"""Seeded stress test: forget/rollup interaction with batched kernels.

Drives 110 randomized schedules that interleave ``evolve``/``observe``/
``forget`` on an :class:`~repro.kalman.ultimate.UltimateKalman`
timeline (random dimensions, lengths, covariances, missing
observations, varying forget windows — some schedules forget several
times).  Every surviving window problem — whose first step carries the
rolled-up summary observation — is then cross-checked against a
from-scratch batch solve of the original full problem, two ways:

* all 110 heterogeneous window problems through **one**
  ``BatchSmoother.smooth_many`` call (stacked kernels over
  summary-headed windows, mixed shapes exercising the bucketing), and
* a sequential :func:`~repro.core.window.solve_window` spot check.

The rolled-up boundary pair must be a sufficient summary under any
schedule: window smoothing equals the tail of full-history smoothing.
"""

import numpy as np

from repro.batch import BatchSmoother
from repro.core.smoother import OddEvenSmoother
from repro.core.window import rollup_prefix, solve_window
from repro.kalman.ultimate import UltimateKalman
from repro.model.generators import random_problem

N_SCHEDULES = 110


def run_schedule(case: int, rng: np.random.Generator):
    """One randomized evolve/observe/forget interleaving.

    Returns ``(original_problem, window_problem, first_index)``.
    """
    dims = int(rng.integers(1, 4))
    k = int(rng.integers(5, 19))
    problem = random_problem(
        k=k,
        seed=10_000 + case,
        dims=dims,
        random_cov=bool(rng.integers(0, 2)),
        obs_prob=0.85,
    )
    uk = UltimateKalman(
        dims, prior=(problem.prior.mean, problem.prior.cov_matrix())
    )
    s0 = problem.steps[0]
    if s0.observation is not None:
        uk.observe_step(s0.observation)
    for step in problem.steps[1:]:
        uk.evolve_step(step.evolution)
        if step.observation is not None:
            uk.observe_step(step.observation)
        # Forget at random points mid-stream, with random windows —
        # including repeatedly, and right after an unobserved step.
        if rng.uniform() < 0.25:
            uk.forget(keep_last=int(rng.integers(1, 7)))
    return problem, uk.problem(), uk.first_index


class TestForgetRollupStress:
    def test_batched_window_solves_match_from_scratch(self):
        rng = np.random.default_rng(20260729)
        originals, windows, firsts = [], [], []
        for case in range(N_SCHEDULES):
            problem, window, first = run_schedule(case, rng)
            originals.append(problem)
            windows.append(window)
            firsts.append(first)
        # Sanity: the schedules actually forgot things.
        assert sum(1 for f in firsts if f > 0) > N_SCHEDULES // 2

        smoother = OddEvenSmoother()
        fulls = [smoother.smooth(p) for p in originals]

        # One stacked call over all 110 heterogeneous windows.
        results = BatchSmoother().smooth_many(windows)
        for case, (result, full, first) in enumerate(
            zip(results, fulls, firsts)
        ):
            assert len(result.means) == len(full.means) - first
            for j, (mean, cov) in enumerate(
                zip(result.means, result.covariances)
            ):
                assert np.allclose(
                    mean, full.means[first + j], atol=1e-8
                ), (case, j)
                assert np.allclose(
                    cov, full.covariances[first + j], atol=1e-8
                ), (case, j)

        # Sequential spot check on a subset: the same windows through
        # the non-batched window solver.
        for case in range(0, N_SCHEDULES, 13):
            result = solve_window(
                windows[case], first_index=firsts[case]
            )
            full, first = fulls[case], firsts[case]
            for j, mean in enumerate(result.means):
                assert np.allclose(
                    mean, full.means[first + j], atol=1e-8
                ), (case, j)

    def test_forget_window_equals_from_scratch_rollup(self):
        """The incremental forget path and the from-scratch
        :func:`rollup_prefix` must yield windows whose smooths agree —
        batched together in one stacked call."""
        rng = np.random.default_rng(42)
        pairs = []
        for case in range(1000, 1024):
            _problem, window, first = run_schedule(case, rng)
            if first == 0:
                continue
            pairs.append((_problem, window, first))
        assert len(pairs) >= 8
        batch = BatchSmoother()
        forget_windows = [w for _, w, _ in pairs]
        rollup_windows = [
            rollup_prefix(p, first) for p, _, first in pairs
        ]
        results = batch.smooth_many(forget_windows + rollup_windows)
        n = len(pairs)
        for i in range(n):
            res_forget, res_rollup = results[i], results[n + i]
            assert len(res_forget.means) == len(res_rollup.means)
            for a, b in zip(res_forget.means, res_rollup.means):
                assert np.allclose(a, b, atol=1e-8), i
            for a, b in zip(
                res_forget.covariances, res_rollup.covariances
            ):
                assert np.allclose(a, b, atol=1e-8), i
