"""StreamServer configuration forwarding: the silent-covariance bug.

Regression coverage for the serving-config bug: a server constructed
with ``compute_covariance=False`` but a *named* smoother (e.g.
``smoother="batch-odd-even"``) used to pass only
``EstimatorConfig(backend=...)`` into the flush, so the batch engine
fell back to its own default and computed (and attached) the
covariances the caller asked to skip.  The flush config now carries
``compute_covariance`` (and ``dtype``), and capability conflicts fail
at construction instead of surfacing mid-serve.
"""

import numpy as np
import pytest

import repro
from repro.model.generators import random_problem
from repro.stream import StreamServer, StreamStep


def as_arrivals(problem):
    return [
        StreamStep(
            seq=seq,
            evolution=step.evolution,
            observation=step.observation,
        )
        for seq, step in enumerate(problem.steps)
    ]


def serve(server, problems):
    """Open, submit everything, flush once, close; emissions per sid."""
    for sid, p in enumerate(problems):
        server.open_stream(
            sid,
            p.state_dims[0],
            prior=(p.prior.mean, p.prior.cov_matrix()),
        )
    for sid, p in enumerate(problems):
        for step in as_arrivals(p):
            server.submit(sid, step)
    collected = {sid: [] for sid in range(len(problems))}
    for sid, ems in server.flush().items():
        collected[sid].extend(ems)
    for sid in range(len(problems)):
        collected[sid].extend(server.close_stream(sid))
    return collected


class TestCovarianceFlagForwarding:
    def test_named_smoother_honors_means_only_serving(self):
        """The regression: a registry-named smoother must not attach
        covariances when the server was built means-only.  (On the old
        code the flush config dropped the flag and every flushed
        emission carried a covariance.)"""
        problems = [
            random_problem(k=7, seed=i, dims=3) for i in range(3)
        ]
        server = StreamServer(
            3, compute_covariance=False, smoother="batch-odd-even"
        )
        collected = serve(server, problems)
        assert all(collected.values())
        for ems in collected.values():
            for emission in ems:
                assert emission.cov is None

    def test_default_smoother_still_means_only(self):
        problems = [random_problem(k=6, seed=9, dims=3)]
        server = StreamServer(2, compute_covariance=False)
        collected = serve(server, problems)
        for ems in collected.values():
            for emission in ems:
                assert emission.cov is None

    def test_covariance_serving_unchanged(self):
        problems = [random_problem(k=6, seed=3, dims=3)]
        server = StreamServer(2, smoother="batch-odd-even")
        collected = serve(server, problems)
        for ems in collected.values():
            for emission in ems:
                assert emission.cov is not None


class TestConstructionConflicts:
    def test_means_only_request_with_cov_carrying_smoother(self):
        """batch-associative cannot skip covariances: the conflict
        must fail at construction, not on the first flush."""
        with pytest.raises(ValueError, match="supports_nc"):
            StreamServer(
                2,
                compute_covariance=False,
                smoother="batch-associative",
            )

    def test_covariance_request_with_means_only_smoother(self):
        with pytest.raises(ValueError, match="means only"):
            StreamServer(2, smoother="normal-equations")

    @pytest.mark.parametrize(
        "name", ["ipls", "gauss-newton", "levenberg-marquardt"]
    )
    def test_iterative_smoother_rejected_at_construction(self, name):
        """Iterated nonlinear smoothers solve a different problem
        shape (re-linearized outer loops) and must be refused up
        front, not crash mid-serve on the first window flush."""
        with pytest.raises(ValueError, match="iterative"):
            StreamServer(2, smoother=name)

    def test_iterative_smoother_rejected_by_fixed_lag(self):
        from repro.stream import FixedLagSmoother

        with pytest.raises(ValueError, match="iterative"):
            FixedLagSmoother(2, 2, smoother="ipls")


class TestDtypeForwarding:
    def test_mixed_precision_serving_matches_default(self):
        """dtype='mixed' flows into the flush solves and agrees with
        the float64 pipeline at refinement accuracy."""
        problems = [
            random_problem(k=7, seed=20 + i, dims=3) for i in range(2)
        ]
        ref = serve(StreamServer(3), problems)
        got = serve(StreamServer(3, dtype="mixed"), problems)
        for sid in ref:
            assert len(ref[sid]) == len(got[sid])
            for a, b in zip(ref[sid], got[sid]):
                assert b.mean.dtype == np.float64
                np.testing.assert_allclose(
                    b.mean, a.mean, atol=1e-8, rtol=1e-8
                )
