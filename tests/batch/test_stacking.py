"""Tests for padding, bucketing, and batched whitening/stacking."""

import numpy as np
import pytest

from repro.batch.stacking import (
    bucket_problems,
    pad_problem,
    padded_length,
    stack_whitened,
    structure_signature,
)
from repro.core.smoother import OddEvenSmoother
from repro.model.generators import random_problem, tracking_2d_problem


class TestPaddedLength:
    @pytest.mark.parametrize(
        "n,expect", [(1, 1), (2, 2), (3, 4), (5, 8), (64, 64), (65, 128)]
    )
    def test_next_power_of_two(self, n, expect):
        assert padded_length(n) == expect

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            padded_length(0)


class TestPadProblem:
    def test_padding_is_exact(self):
        problem = random_problem(k=9, seed=4, dims=3, random_cov=True)
        padded = pad_problem(problem, 16)
        assert padded.n_states == 16
        ref = OddEvenSmoother().smooth(problem)
        got = OddEvenSmoother().smooth(padded)
        for i in range(problem.n_states):
            np.testing.assert_allclose(
                got.means[i], ref.means[i], atol=1e-10
            )
            np.testing.assert_allclose(
                got.covariances[i], ref.covariances[i], atol=1e-10
            )
        assert got.residual_sq == pytest.approx(ref.residual_sq)
        # Padded states replicate the last real state's estimate
        # (identity evolution with no observations).
        np.testing.assert_allclose(
            got.means[-1], ref.means[-1], atol=1e-10
        )

    def test_noop_and_rejection(self):
        problem = random_problem(k=3, seed=0)
        assert pad_problem(problem, 4) is problem
        with pytest.raises(ValueError):
            pad_problem(problem, 2)


class TestSignatureAndBuckets:
    def test_signature_ignores_values(self):
        a = random_problem(k=5, seed=1, dims=3)
        b = random_problem(k=5, seed=99, dims=3)
        assert structure_signature(a) == structure_signature(b)

    def test_signature_obs_rows_flag(self):
        a = random_problem(k=5, seed=1, dims=3)
        sparse = random_problem(k=5, seed=1, dims=3, obs_prob=0.3)
        assert structure_signature(a) == structure_signature(sparse)
        assert structure_signature(
            a, obs_rows=True
        ) != structure_signature(sparse, obs_rows=True)

    def test_heterogeneous_lengths_share_buckets(self):
        problems = [
            random_problem(k=k, seed=k, dims=3)
            for k in (5, 7, 4, 6, 7)  # 5..8 states, all pad to 8
        ]
        buckets = bucket_problems(problems)
        assert len(buckets) == 1
        assert buckets[0].batch == 5
        assert buckets[0].n_states == 8
        assert sorted(buckets[0].indices) == list(range(5))

    def test_different_dims_split_buckets(self):
        problems = [
            random_problem(k=3, seed=0, dims=2),
            random_problem(k=3, seed=0, dims=3),
        ]
        assert len(bucket_problems(problems)) == 2

    def test_no_pad_buckets_exact_lengths(self):
        problems = [
            random_problem(k=3, seed=0, dims=3),
            random_problem(k=5, seed=0, dims=3),
        ]
        assert len(bucket_problems(problems, pad=False)) == 2


class TestStackWhitened:
    def test_matches_per_problem_whitening(self):
        problems = [
            random_problem(k=6, seed=s, dims=3, random_cov=True)
            for s in range(4)
        ]
        stacked = stack_whitened(problems)
        for b, problem in enumerate(problems):
            white = problem.whiten()
            for i, ws in enumerate(white.steps):
                np.testing.assert_allclose(
                    stacked.steps[i].C[b], ws.C, atol=1e-12
                )
                np.testing.assert_allclose(
                    stacked.steps[i].rhs_C[b], ws.rhs_C, atol=1e-12
                )
                if ws.B is not None:
                    np.testing.assert_allclose(
                        stacked.steps[i].B[b], ws.B, atol=1e-12
                    )
                    np.testing.assert_allclose(
                        stacked.steps[i].D[b], ws.D, atol=1e-12
                    )
                    np.testing.assert_allclose(
                        stacked.steps[i].rhs_BD[b], ws.rhs_BD, atol=1e-12
                    )

    def test_zero_pads_missing_observations(self):
        dense = random_problem(k=6, seed=1, dims=2)
        sparse = random_problem(k=6, seed=2, dims=2, obs_prob=0.4)
        stacked = stack_whitened([dense, sparse])
        white_sparse = sparse.whiten()
        for i, ws in enumerate(white_sparse.steps):
            rows = ws.C.shape[0]
            got = stacked.steps[i].C[1]
            np.testing.assert_allclose(got[:rows], ws.C, atol=1e-12)
            # Padding rows are exactly zero (coefficients and RHS).
            assert np.all(got[rows:] == 0.0)
            assert np.all(stacked.steps[i].rhs_C[1][rows:] == 0.0)

    def test_tracking_workload_stacks(self):
        problems = [
            tracking_2d_problem(k=10, seed=s)[0] for s in range(3)
        ]
        stacked = stack_whitened(problems)
        assert stacked.steps[0].C.shape[0] == 3

    def test_shape_accessors_address_trailing_axes(self):
        problems = [
            tracking_2d_problem(k=3, seed=s)[0] for s in range(5)
        ]
        stacked = stack_whitened(problems)
        white = problems[0].whiten()
        # Batched accessors report per-sequence row counts, not the
        # batch size.
        for got, want in zip(stacked.steps, white.steps):
            assert got.obs_rows == want.obs_rows
            assert got.evo_rows == want.evo_rows
        assert stacked.total_rows() == white.total_rows()

    def test_rejects_empty_and_mixed(self):
        with pytest.raises(ValueError):
            stack_whitened([])
        with pytest.raises(ValueError):
            stack_whitened(
                [
                    random_problem(k=2, seed=0, dims=2),
                    random_problem(k=2, seed=0, dims=3),
                ]
            )
