"""Concurrent plan replay: threaded == serial, bit for bit.

The regression under test: a cached :class:`~repro.batch.plan.SmoothPlan`
carries preallocated stacked workspaces, and before the workspace-lease
mechanism two threads hitting the same :class:`~repro.batch.plan.PlanCache`
entry wrote into the *same* buffers mid-flight, silently corrupting each
other's stacked factorizations.  These tests drive N threads through one
shared cache entry (distinct values, identical structure) and require
every threaded result to equal the serial result exactly — they fail on
the pre-lease code.
"""

import sys
import threading
from contextlib import contextmanager

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.batch.plan import PlanCache, build_plan, workload_key
from repro.model.generators import random_problem


def assert_identical(a, b):
    """Bit-for-bit equality of two SmootherResult lists."""
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        assert len(ra.means) == len(rb.means)
        for ma, mb in zip(ra.means, rb.means):
            np.testing.assert_array_equal(np.asarray(ma), np.asarray(mb))
        if ra.covariances is None:
            assert rb.covariances is None
        else:
            for ca, cb in zip(ra.covariances, rb.covariances):
                np.testing.assert_array_equal(
                    np.asarray(ca), np.asarray(cb)
                )
        assert ra.residual_sq == rb.residual_sq


def workload(lengths, seed0=0, dims=3):
    return [
        random_problem(k, seed=seed0 + i, dims=dims, random_cov=True)
        for i, k in enumerate(lengths)
    ]


@contextmanager
def aggressive_preemption():
    """Shrink the GIL switch interval so thread interleavings that
    would take minutes of wall clock to hit at the default 5 ms show
    up within a few rounds."""
    old = sys.getswitchinterval()
    sys.setswitchinterval(1e-6)
    try:
        yield
    finally:
        sys.setswitchinterval(old)


def run_threaded(workloads, cache, *, rounds=4, dtype=None):
    """Each thread smooths its own workload through the shared cache.

    All workloads share one structure (one cache entry).  A barrier
    maximizes overlap; each thread repeats ``rounds`` times (the result
    is deterministic per workload, so every round must reproduce it).
    Returns the per-thread results of the last round.
    """
    n = len(workloads)
    barrier = threading.Barrier(n)
    results: list = [None] * n
    errors: list = []

    def work(t):
        sm = repro.BatchSmoother()
        cfg = repro.EstimatorConfig(plan_cache=cache, dtype=dtype)
        try:
            barrier.wait()
            for _ in range(rounds):
                results[t] = sm.smooth_many(workloads[t], config=cfg)
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append((t, exc))

    threads = [
        threading.Thread(target=work, args=(t,)) for t in range(n)
    ]
    with aggressive_preemption():
        for th in threads:
            th.start()
        for th in threads:
            th.join()
    assert not errors, f"threads raised: {errors}"
    return results


class TestThreadedReplayBitIdentical:
    def test_eight_threads_one_cache_entry(self):
        """The headline regression: 8 threads, one shared plan, every
        thread's answers equal its serial answers bit for bit."""
        lengths = [6, 9, 5, 7]
        workloads = [
            workload(lengths, seed0=1000 * t) for t in range(8)
        ]
        assert (
            len({workload_key(w) for w in workloads}) == 1
        ), "threads must share one cache entry for the test to bite"
        cache = PlanCache()
        # Warm the entry so every thread replays (hits) the same plan.
        repro.BatchSmoother().smooth_many(
            workloads[0], config=repro.EstimatorConfig(plan_cache=cache)
        )
        got = run_threaded(workloads, cache, rounds=5)
        sm = repro.BatchSmoother()
        for t, w in enumerate(workloads):
            want = sm.smooth_many(
                w, config=repro.EstimatorConfig(plan_cache=False)
            )
            assert_identical(want, got[t])

    def test_mixed_precision_threads(self):
        """The float32/refined path leases workspaces too."""
        workloads = [workload([5, 8], seed0=97 * t) for t in range(4)]
        cache = PlanCache()
        got = run_threaded(workloads, cache, rounds=3, dtype="mixed")
        sm = repro.BatchSmoother()
        for t, w in enumerate(workloads):
            want = sm.smooth_many(
                w,
                config=repro.EstimatorConfig(
                    plan_cache=False, dtype="mixed"
                ),
            )
            assert_identical(want, got[t])

    @settings(max_examples=6, deadline=None)
    @given(
        lengths=st.lists(
            st.integers(min_value=2, max_value=9), min_size=1, max_size=3
        ),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_property_threaded_equals_serial(self, lengths, seed):
        """Hypothesis sweep over workload shapes: threaded smooth_many
        over a shared cache is bit-identical to serial execution."""
        workloads = [
            workload(lengths, seed0=seed + 37 * t) for t in range(4)
        ]
        cache = PlanCache()
        got = run_threaded(workloads, cache, rounds=3)
        sm = repro.BatchSmoother()
        for t, w in enumerate(workloads):
            want = sm.smooth_many(
                w, config=repro.EstimatorConfig(plan_cache=False)
            )
            assert_identical(want, got[t])


class TestLeaseMechanics:
    def test_uncontended_lease_reuses_the_template(self):
        probs = workload([5, 6])
        plan = build_plan(probs)
        with plan.lease_workspaces() as ws1:
            first = ws1
        with plan.lease_workspaces() as ws2:
            assert ws2 is first  # returned to the pool and re-leased
        stats = plan.workspace_stats()
        assert stats["leases"] == 2
        assert stats["clones"] == 0
        assert stats["pooled"] == 1

    def test_contended_leases_get_distinct_workspaces(self):
        probs = workload([5, 6])
        plan = build_plan(probs)
        with plan.lease_workspaces() as outer:
            with plan.lease_workspaces() as inner:
                assert inner is not outer
                for a, b in zip(outer, inner):
                    if a is None:
                        assert b is None
                        continue
                    for ba, bb in zip(a.obs_buffers, b.obs_buffers):
                        if ba is not None:
                            assert ba is not bb
                            np.testing.assert_array_equal(ba, bb)
        assert plan.workspace_stats()["clones"] == 1
        assert plan.workspace_stats()["pooled"] == 2

    def test_pool_is_bounded(self):
        probs = workload([4])
        plan = build_plan(probs)
        plan.max_pooled = 2
        from contextlib import ExitStack

        with ExitStack() as stack:
            for _ in range(5):
                stack.enter_context(plan.lease_workspaces())
        stats = plan.workspace_stats()
        assert stats["pooled"] == 2  # the rest were dropped
        assert stats["clones"] == 4

    def test_smoother_reports_workspace_stats(self):
        probs = workload([5, 6])
        cache = PlanCache()
        sm = repro.BatchSmoother()
        cfg = repro.EstimatorConfig(plan_cache=cache)
        sm.smooth_many(probs, config=cfg)
        sm.smooth_many(probs, config=cfg)
        ws = sm.last_diagnostics["plan_cache"]["workspaces"]
        assert ws["leases"] == 2
        assert ws["clones"] == 0
        assert ws["pooled"] == 1

    def test_associative_plans_lease_none(self):
        probs = workload([5, 5])
        plan = build_plan(probs, exact_obs=True)
        with plan.lease_workspaces() as ws:
            assert ws == [None] * len(plan.buckets)
