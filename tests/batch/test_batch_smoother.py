"""Tests for the user-facing batched smoother.

Includes the acceptance check of the batch subsystem: 64+ random
sequences smoothed in one call must match the per-sequence odd-even
smoother's means and covariances to 1e-8.
"""

import numpy as np
import pytest

from repro.batch import BatchSmoother
from repro.core.smoother import OddEvenSmoother
from repro.kalman.rts import RTSSmoother
from repro.model.generators import random_problem, tracking_2d_problem
from repro.parallel.backend import (
    RecordingBackend,
    SerialBackend,
    ThreadPoolBackend,
)


def mixed_workload(count, seed=0):
    rng = np.random.default_rng(seed)
    problems = []
    for i in range(count):
        k = int(rng.integers(1, 40))
        problems.append(
            random_problem(k=k, seed=seed + i, dims=3, random_cov=True)
        )
    return problems


class TestAcceptance:
    def test_64_sequences_match_per_sequence_oddeven(self):
        problems = mixed_workload(64)
        results = BatchSmoother().smooth_many(problems)
        ref = OddEvenSmoother()
        for problem, got in zip(problems, results):
            want = ref.smooth(problem)
            assert len(got.means) == problem.n_states
            for i in range(problem.n_states):
                np.testing.assert_allclose(
                    got.means[i], want.means[i], atol=1e-8, rtol=0
                )
                np.testing.assert_allclose(
                    got.covariances[i],
                    want.covariances[i],
                    atol=1e-8,
                    rtol=0,
                )
            assert got.residual_sq == pytest.approx(
                want.residual_sq, rel=1e-8, abs=1e-10
            )


class TestBehaviour:
    def test_results_in_caller_order(self):
        problems = mixed_workload(10, seed=3)
        results = BatchSmoother().smooth_many(problems)
        for problem, got in zip(problems, results):
            assert len(got.means) == problem.n_states
            assert got.algorithm == "batch-odd-even"
            assert got.diagnostics["batch"] >= 1

    def test_empty_workload(self):
        assert BatchSmoother().smooth_many([]) == []

    def test_single_problem_convenience(self):
        problem = random_problem(k=5, seed=2, dims=3)
        got = BatchSmoother().smooth(problem)
        want = OddEvenSmoother().smooth(problem)
        for a, b in zip(got.means, want.means):
            np.testing.assert_allclose(a, b, atol=1e-9)

    def test_nc_variant_skips_covariances(self):
        results = BatchSmoother(compute_covariance=False).smooth_many(
            mixed_workload(5, seed=1)
        )
        assert all(r.covariances is None for r in results)
        assert all(r.algorithm == "batch-odd-even-nc" for r in results)

    def test_no_prior_problems_supported(self):
        problems = [
            random_problem(k=6, seed=s, dims=3, with_prior=False)
            for s in range(3)
        ]
        results = BatchSmoother().smooth_many(problems)
        ref = OddEvenSmoother()
        for problem, got in zip(problems, results):
            want = ref.smooth(problem)
            for i in range(problem.n_states):
                np.testing.assert_allclose(
                    got.means[i], want.means[i], atol=1e-8
                )

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError):
            BatchSmoother(method="magic")

    def test_rank_deficient_sequence_is_attributed(self):
        from repro.model.steps import Evolution, Observation, Step

        # F = 0 leaves state 0 with zero coefficient everywhere.
        steps = [
            Step(state_dim=2),
            Step(
                state_dim=2,
                evolution=Evolution(F=np.zeros((2, 2))),
                observation=Observation(G=np.eye(2), o=np.zeros(2)),
            ),
        ]
        bad = __import__("repro").StateSpaceProblem(steps, prior=None)
        good = random_problem(k=1, seed=0, dims=2)
        with pytest.raises(
            np.linalg.LinAlgError, match=r"problem index\(es\) \[1\]"
        ):
            BatchSmoother().smooth_many([good, bad, good])


class TestAssociativeMethod:
    def test_matches_rts_per_sequence(self):
        problems = [
            random_problem(k=k, seed=k, dims=3, random_cov=True)
            for k in (4, 9, 4, 17)
        ]
        results = BatchSmoother(method="associative").smooth_many(
            problems
        )
        rts = RTSSmoother()
        for problem, got in zip(problems, results):
            want = rts.smooth(problem)
            assert got.algorithm == "batch-associative"
            for i in range(problem.n_states):
                np.testing.assert_allclose(
                    got.means[i], want.means[i], atol=1e-8, rtol=0
                )
                np.testing.assert_allclose(
                    got.covariances[i],
                    want.covariances[i],
                    atol=1e-8,
                    rtol=0,
                )

    def test_requires_prior_like_its_per_sequence_twin(self):
        problem = random_problem(k=4, seed=0, dims=3, with_prior=False)
        with pytest.raises(ValueError):
            BatchSmoother(method="associative").smooth_many([problem])


class TestBackends:
    def test_threadpool_backend_matches_serial(self):
        problems = mixed_workload(8, seed=5)
        serial = BatchSmoother().smooth_many(problems, SerialBackend())
        with ThreadPoolBackend(3, block_size=1) as pool:
            threaded = BatchSmoother().smooth_many(problems, pool)
        for a, b in zip(serial, threaded):
            for ma, mb in zip(a.means, b.means):
                np.testing.assert_allclose(ma, mb, atol=1e-12)

    def test_recording_backend_captures_batched_costs(self):
        problems = [
            tracking_2d_problem(k=15, seed=s)[0] for s in range(6)
        ]
        rec = RecordingBackend()
        BatchSmoother().smooth_many(problems, rec)
        graph = rec.graph
        assert graph.phases, "batched run recorded no phases"
        flops = sum(t.flops for ph in graph.phases for t in ph.tasks)
        assert flops > 0
        names = {ph.name for ph in graph.phases}
        assert any(name.startswith("oddeven/") for name in names)
