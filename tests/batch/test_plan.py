"""Plan cache: exact replay, LRU behavior, and mixed precision.

The contract under test is the one ``repro.batch.plan`` documents:
replaying a cached :class:`~repro.batch.plan.SmoothPlan` is *exact* —
planned and unplanned ``smooth_many`` agree bit for bit — and the
float32 fast path with iterative refinement recovers float64-level
means on ill-conditioned workloads.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.batch.plan import (
    PlanCache,
    build_plan,
    default_plan_cache,
    workload_key,
)
from repro.model.generators import ill_conditioned_problem, random_problem


def workload(lengths, seed0=0, dims=3):
    return [
        random_problem(k, seed=seed0 + i, dims=dims, random_cov=True)
        for i, k in enumerate(lengths)
    ]


def assert_identical(a, b):
    """Bit-for-bit equality of two SmootherResult lists."""
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        assert len(ra.means) == len(rb.means)
        for ma, mb in zip(ra.means, rb.means):
            np.testing.assert_array_equal(np.asarray(ma), np.asarray(mb))
        if ra.covariances is None:
            assert rb.covariances is None
        else:
            for ca, cb in zip(ra.covariances, rb.covariances):
                np.testing.assert_array_equal(
                    np.asarray(ca), np.asarray(cb)
                )
        assert ra.residual_sq == rb.residual_sq


class TestWorkloadKey:
    def test_structure_only(self):
        """Same shapes, different values -> same key."""
        a = workload([5, 7], seed0=0)
        b = workload([5, 7], seed0=100)
        assert workload_key(a) == workload_key(b)

    def test_options_and_order_matter(self):
        a = workload([5, 7])
        assert workload_key(a, pad=True) != workload_key(a, pad=False)
        assert workload_key(a, exact_obs=True) != workload_key(a)
        assert workload_key(a) != workload_key(list(reversed(a)))

    def test_length_change_changes_key(self):
        assert workload_key(workload([5, 7])) != workload_key(
            workload([5, 8])
        )


class TestPlanCache:
    def test_miss_then_hit(self):
        cache = PlanCache()
        probs = workload([5, 6, 5])
        key = workload_key(probs)
        plan, hit = cache.get_or_build(key, lambda: build_plan(probs))
        assert not hit
        plan2, hit2 = cache.get_or_build(
            key, lambda: pytest.fail("builder must not run on a hit")
        )
        assert hit2 and plan2 is plan
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["workspace_bytes"] > 0

    def test_lru_eviction(self):
        cache = PlanCache(maxsize=2)
        workloads = [workload([k]) for k in (3, 4, 5)]
        keys = [workload_key(w) for w in workloads]
        for w, key in zip(workloads, keys):
            cache.get_or_build(key, lambda w=w: build_plan(w))
        assert len(cache) == 2
        assert keys[0] not in cache  # least recently used went first
        assert keys[1] in cache and keys[2] in cache
        assert cache.evictions == 1

    def test_hit_refreshes_recency(self):
        cache = PlanCache(maxsize=2)
        workloads = [workload([k]) for k in (3, 4, 5)]
        keys = [workload_key(w) for w in workloads]
        for w, key in zip(workloads[:2], keys[:2]):
            cache.get_or_build(key, lambda w=w: build_plan(w))
        cache.get_or_build(keys[0], lambda: pytest.fail("hit expected"))
        cache.get_or_build(keys[2], lambda: build_plan(workloads[2]))
        assert keys[0] in cache and keys[1] not in cache

    def test_clear(self):
        cache = PlanCache()
        probs = workload([4])
        cache.get_or_build(workload_key(probs), lambda: build_plan(probs))
        cache.clear()
        assert len(cache) == 0 and cache.misses == 0

    def test_rejects_bad_maxsize(self):
        with pytest.raises(ValueError):
            PlanCache(maxsize=0)

    def test_default_cache_is_a_singleton(self):
        assert default_plan_cache() is default_plan_cache()


class TestPlannedReplayExact:
    """Planned and unplanned smooth_many agree bit for bit."""

    @pytest.mark.parametrize("dtype", [None, "mixed", np.float32])
    def test_warm_replay_is_bit_for_bit(self, dtype):
        probs = workload([5, 9, 5, 7, 12])
        sm = repro.BatchSmoother()
        cache = PlanCache()
        cold = sm.smooth_many(
            probs,
            config=repro.EstimatorConfig(dtype=dtype, plan_cache=False),
        )
        planned = sm.smooth_many(
            probs,
            config=repro.EstimatorConfig(dtype=dtype, plan_cache=cache),
        )
        assert sm.last_diagnostics["plan_cache"]["hit"] is False
        warm = sm.smooth_many(
            probs,
            config=repro.EstimatorConfig(dtype=dtype, plan_cache=cache),
        )
        assert sm.last_diagnostics["plan_cache"]["hit"] is True
        assert_identical(cold, planned)
        assert_identical(planned, warm)

    def test_replay_with_different_values_same_structure(self):
        """A warm plan must not leak one workload's numbers into the
        next: same key, fresh values, fresh answers."""
        cache = PlanCache()
        sm = repro.BatchSmoother()
        first = workload([5, 7, 6], seed0=0)
        second = workload([5, 7, 6], seed0=50)
        assert workload_key(first) == workload_key(second)
        sm.smooth_many(
            first, config=repro.EstimatorConfig(plan_cache=cache)
        )
        got = sm.smooth_many(
            second, config=repro.EstimatorConfig(plan_cache=cache)
        )
        assert sm.last_diagnostics["plan_cache"]["hit"] is True
        want = sm.smooth_many(
            second, config=repro.EstimatorConfig(plan_cache=False)
        )
        assert_identical(want, got)

    @settings(max_examples=15, deadline=None)
    @given(
        lengths=st.lists(
            st.integers(min_value=2, max_value=17), min_size=1, max_size=5
        ),
        seed=st.integers(min_value=0, max_value=2**16),
        pad=st.booleans(),
    )
    def test_property_plan_replay_exact(self, lengths, seed, pad):
        probs = workload(lengths, seed0=seed)
        sm = repro.BatchSmoother()
        cache = PlanCache()
        cfg = repro.EstimatorConfig(pad=pad, plan_cache=cache)
        planned = sm.smooth_many(probs, config=cfg)
        warm = sm.smooth_many(probs, config=cfg)
        cold = sm.smooth_many(
            probs, config=repro.EstimatorConfig(pad=pad, plan_cache=False)
        )
        assert_identical(cold, planned)
        assert_identical(planned, warm)

    def test_associative_method_plans_too(self):
        probs = workload([5, 5, 9])
        sm = repro.BatchSmoother(method="associative")
        cache = PlanCache()
        cfg = repro.EstimatorConfig(plan_cache=cache)
        planned = sm.smooth_many(probs, config=cfg)
        warm = sm.smooth_many(probs, config=cfg)
        assert sm.last_diagnostics["plan_cache"]["hit"] is True
        cold = sm.smooth_many(
            probs, config=repro.EstimatorConfig(plan_cache=False)
        )
        assert_identical(cold, planned)
        assert_identical(planned, warm)


class TestDiagnostics:
    def test_phase_timings_and_cache_outcome(self):
        probs = workload([6, 6])
        sm = repro.BatchSmoother()
        cache = PlanCache()
        sm.smooth_many(probs, config=repro.EstimatorConfig(plan_cache=cache))
        diag = sm.last_diagnostics
        assert diag["plan_cache"]["enabled"] is True
        assert diag["workload"] == 2
        phases = diag["phases"]
        assert phases["stack"] > 0 and phases["factorize"] > 0
        assert phases["refine"] == 0.0  # float64 run: no refinement
        assert diag["total_s"] > 0

    def test_result_diagnostics_flag_planned_runs(self):
        probs = workload([6])
        sm = repro.BatchSmoother()
        planned = sm.smooth_many(
            probs, config=repro.EstimatorConfig(plan_cache=PlanCache())
        )
        cold = sm.smooth_many(
            probs, config=repro.EstimatorConfig(plan_cache=False)
        )
        assert planned[0].diagnostics["planned"] is True
        assert cold[0].diagnostics["planned"] is False

    def test_disabled_cache_reports_disabled(self):
        sm = repro.BatchSmoother()
        sm.smooth_many(
            workload([4]), config=repro.EstimatorConfig(plan_cache=False)
        )
        assert sm.last_diagnostics["plan_cache"]["enabled"] is False


class TestMixedPrecision:
    """float32 solve + float64 refinement (EstimatorConfig.dtype)."""

    @pytest.mark.parametrize("cond", [1e2, 1e4, 1e6])
    def test_refined_means_match_float64_on_stability_suite(self, cond):
        """The acceptance bar: 1e-8 agreement with the float64
        pipeline on ill-conditioned (results/stability.json-style)
        workloads."""
        probs = [
            ill_conditioned_problem(n=4, k=15, cond=cond, seed=s)
            for s in range(4)
        ]
        sm = repro.BatchSmoother()
        r64 = sm.smooth_many(
            probs, config=repro.EstimatorConfig(plan_cache=False)
        )
        rmx = sm.smooth_many(
            probs,
            config=repro.EstimatorConfig(dtype="mixed", plan_cache=False),
        )
        assert sm.last_diagnostics["phases"]["refine"] > 0
        for a, b in zip(r64, rmx):
            for ma, mb in zip(a.means, b.means):
                assert mb.dtype == np.float64
                scale = max(1.0, float(np.max(np.abs(ma))))
                np.testing.assert_allclose(
                    mb, ma, atol=1e-8 * scale, rtol=1e-8
                )
            assert np.isclose(
                a.residual_sq, b.residual_sq, rtol=1e-6, atol=1e-8
            )

    @pytest.mark.parametrize("cond", [1e4, 1e6])
    def test_mixed_covariances_match_float64_pipeline(self, cond):
        """The covariance-gap fix: in ``dtype="mixed"``, SelInv runs
        off a float64 re-factorization, so covariances agree with the
        float64 pipeline at 1e-10 even at cond 1e6 (the raw float32
        factor is orders of magnitude worse there)."""
        probs = [
            ill_conditioned_problem(n=4, k=15, cond=cond, seed=s)
            for s in range(3)
        ]
        sm = repro.BatchSmoother()
        r64 = sm.smooth_many(
            probs, config=repro.EstimatorConfig(plan_cache=False)
        )
        rmx = sm.smooth_many(
            probs,
            config=repro.EstimatorConfig(dtype="mixed", plan_cache=False),
        )
        assert sm.last_diagnostics["phases"]["cov_refine"] > 0
        for a, b in zip(r64, rmx):
            assert b.diagnostics["cov_dtype"] == "float64"
            for ca, cb in zip(a.covariances, b.covariances):
                assert cb.dtype == np.float64
                scale = max(1.0, float(np.max(np.abs(ca))))
                np.testing.assert_allclose(
                    cb, ca, atol=1e-10 * scale, rtol=1e-10
                )

    def test_means_only_mixed_skips_covariance_refinement(self):
        probs = [ill_conditioned_problem(n=3, k=9, cond=1e4, seed=0)]
        sm = repro.BatchSmoother(compute_covariance=False)
        out = sm.smooth_many(
            probs,
            config=repro.EstimatorConfig(dtype="mixed", plan_cache=False),
        )
        assert sm.last_diagnostics["phases"]["cov_refine"] == 0.0
        assert out[0].covariances is None
        assert out[0].diagnostics["cov_dtype"] is None

    def test_refinement_beats_raw_float32(self):
        probs = [ill_conditioned_problem(n=4, k=15, cond=1e4, seed=7)]
        r64 = repro.BatchSmoother().smooth_many(
            probs, config=repro.EstimatorConfig(plan_cache=False)
        )
        cfg = repro.EstimatorConfig(dtype="mixed", plan_cache=False)
        raw = repro.BatchSmoother(refine_steps=0).smooth_many(
            probs, config=cfg
        )
        refined = repro.BatchSmoother(refine_steps=1).smooth_many(
            probs, config=cfg
        )

        def err(res):
            return max(
                float(np.max(np.abs(m - m64)))
                for m, m64 in zip(res.means, r64[0].means)
            )

        assert err(refined[0]) < 1e-3 * err(raw[0])

    def test_float32_dtype_returns_float32(self):
        """np.float32 keeps the historical output contract (float32
        arrays) while the solve goes through the refined fast path."""
        probs = workload([6, 9])
        sm = repro.BatchSmoother()
        out = sm.smooth_many(
            probs,
            config=repro.EstimatorConfig(
                dtype=np.float32, plan_cache=False
            ),
        )
        for r in out:
            assert all(m.dtype == np.float32 for m in r.means)
            assert all(c.dtype == np.float32 for c in r.covariances)
            assert r.diagnostics["solve_dtype"] == "float32"
            assert r.diagnostics["refine_steps"] == 1

    def test_rejects_negative_refine_steps(self):
        with pytest.raises(ValueError):
            repro.BatchSmoother(refine_steps=-1)

    def test_solve_and_output_dtype_mapping(self):
        cfg = repro.EstimatorConfig()
        assert cfg.solve_dtype is None and cfg.output_dtype is None
        cfg = repro.EstimatorConfig(dtype="mixed")
        assert cfg.solve_dtype == np.float32
        assert cfg.output_dtype == np.float64
        cfg = repro.EstimatorConfig(dtype=np.float32)
        assert cfg.solve_dtype == np.float32
        assert cfg.output_dtype == np.dtype(np.float32)
        cfg = repro.EstimatorConfig(dtype=np.float16)
        assert cfg.solve_dtype is None
        assert cfg.output_dtype == np.dtype(np.float16)
