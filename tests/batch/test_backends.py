"""Cross-backend agreement for the stacked smoothers.

Every installed backend must agree with the Paige–Saunders oracle to
1e-6 and replay bit-identically from the plan cache.  The "mirror"
backend (numpy in disguise, always installed) additionally proves via
its call counters that the kernels actually routed through the
namespace shim rather than falling back to hard ``np.*`` calls.
"""

import importlib.util

import numpy as np
import pytest

import repro
from repro.api import EstimatorConfig
from repro.batch import BatchSmoother
from repro.batch.plan import PlanCache
from repro.kalman.associative import AssociativeSmoother
from repro.kalman.paige_saunders import PaigeSaundersSmoother
from repro.linalg.xp import mirror_call_counts, reset_mirror_counts

BACKENDS = ["mirror"] + [
    name
    for name in ("torch", "jax", "cupy")
    if importlib.util.find_spec(name) is not None
]


@pytest.fixture(scope="module")
def problems():
    return [repro.random_problem(k=k, seed=s, dims=2)
            for s, k in enumerate((5, 5, 7, 9))]


@pytest.fixture(scope="module")
def oracle(problems):
    smoother = PaigeSaundersSmoother()
    return [smoother.smooth(p) for p in problems]


def assert_matches_oracle(results, oracle, atol=1e-6):
    for res, ref in zip(results, oracle):
        assert all(type(m) is np.ndarray for m in res.means)
        for i in range(len(ref.means)):
            np.testing.assert_allclose(
                res.means[i], ref.means[i], atol=atol
            )
            if res.covariances is not None:
                np.testing.assert_allclose(
                    res.covariances[i], ref.covariances[i], atol=atol
                )


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("method", ["odd-even", "associative"])
class TestBatchSmootherBackends:
    def test_agrees_with_oracle(self, method, backend, problems, oracle):
        sm = BatchSmoother(method=method)
        cfg = EstimatorConfig(
            array_module=backend, plan_cache=PlanCache()
        )
        assert_matches_oracle(sm.smooth_many(problems, config=cfg), oracle)
        assert sm.last_diagnostics["array_backend"] == backend

    def test_plan_replay_is_bit_identical(
        self, method, backend, problems, oracle
    ):
        sm = BatchSmoother(method=method)
        cfg = EstimatorConfig(
            array_module=backend, plan_cache=PlanCache()
        )
        first = sm.smooth_many(problems, config=cfg)
        replay = sm.smooth_many(problems, config=cfg)
        assert sm.last_diagnostics["plan_cache"]["hit"] is True
        for a, b in zip(first, replay):
            for i in range(len(a.means)):
                np.testing.assert_array_equal(a.means[i], b.means[i])

    def test_matches_numpy_run(self, method, backend, problems, oracle):
        """Backend runs agree with the plain-numpy run to 1e-6
        (bit-identical for mirror, which *is* numpy)."""
        sm = BatchSmoother(method=method)
        base = sm.smooth_many(problems)
        cfg = EstimatorConfig(
            array_module=backend, plan_cache=PlanCache()
        )
        routed = sm.smooth_many(problems, config=cfg)
        assert_fn = (
            np.testing.assert_array_equal
            if backend == "mirror"
            else lambda a, b: np.testing.assert_allclose(a, b, atol=1e-6)
        )
        for r, b in zip(routed, base):
            for i in range(len(r.means)):
                assert_fn(r.means[i], b.means[i])


@pytest.mark.parametrize("backend", BACKENDS)
class TestAssociativeSmootherBackends:
    def test_agrees_with_oracle(self, backend, problems, oracle):
        sm = AssociativeSmoother()
        cfg = EstimatorConfig(array_module=backend)
        for problem, ref in zip(problems, oracle):
            res = sm.smooth(problem, config=cfg)
            for i in range(len(ref.means)):
                np.testing.assert_allclose(
                    res.means[i], ref.means[i], atol=1e-6
                )
                np.testing.assert_allclose(
                    res.covariances[i], ref.covariances[i], atol=1e-6
                )


class TestMirrorProvesRouting:
    @pytest.mark.parametrize("method", ["odd-even", "associative"])
    def test_stacked_kernels_route_through_the_namespace(
        self, method, problems
    ):
        reset_mirror_counts()
        sm = BatchSmoother(method=method)
        cfg = EstimatorConfig(
            array_module="mirror", plan_cache=PlanCache()
        )
        sm.smooth_many(problems, config=cfg)
        counts = mirror_call_counts()
        assert counts, f"{method}: no calls routed through the shim"
        # Both paths lean on batched solves; their absence means a
        # kernel regressed to hard np.* calls.
        assert counts.get("linalg.solve", 0) > 0
        reset_mirror_counts()

    def test_unplanned_path_routes_too(self, problems):
        reset_mirror_counts()
        sm = BatchSmoother()
        cfg = EstimatorConfig(array_module="mirror", plan_cache=False)
        sm.smooth_many(problems, config=cfg)
        assert mirror_call_counts()
        reset_mirror_counts()

    def test_numpy_run_never_touches_the_mirror(self, problems):
        reset_mirror_counts()
        BatchSmoother().smooth_many(problems)
        assert mirror_call_counts() == {}


class TestNumpyOnlyEnvironmentsUnaffected:
    def test_default_config_reports_numpy(self, problems):
        sm = BatchSmoother()
        sm.smooth_many(problems)
        assert sm.last_diagnostics["array_backend"] == "numpy"

    def test_mixed_precision_composes_with_backends(self, problems, oracle):
        sm = BatchSmoother()
        cfg = EstimatorConfig(
            array_module="mirror", dtype="mixed", plan_cache=False
        )
        results = sm.smooth_many(problems, config=cfg)
        for res, ref in zip(results, oracle):
            assert res.diagnostics["solve_dtype"] == "float32"
            for i in range(len(ref.means)):
                np.testing.assert_allclose(
                    res.means[i], ref.means[i], atol=1e-4
                )
