"""Tests for the Levenberg–Marquardt nonlinear smoother."""

import numpy as np
import pytest

from repro.model.dense import dense_solve
from repro.model.generators import random_problem
from repro.model.nonlinear import coordinated_turn_problem, pendulum_problem
from repro.nonlinear.gauss_newton import GaussNewtonSmoother
from repro.nonlinear.levenberg_marquardt import (
    LevenbergMarquardtSmoother,
    damp_problem,
)


class TestDamping:
    def test_zero_lambda_is_identity(self):
        p = random_problem(k=3, seed=0)
        ref = [np.zeros(n) for n in p.state_dims]
        assert damp_problem(p, ref, 0.0) is p

    def test_negative_lambda_rejected(self):
        p = random_problem(k=2, seed=1)
        ref = [np.zeros(n) for n in p.state_dims]
        with pytest.raises(ValueError):
            damp_problem(p, ref, -1.0)

    def test_damping_pulls_towards_reference(self):
        p = random_problem(k=4, seed=2)
        solution = dense_solve(p)
        ref = [np.zeros(n) for n in p.state_dims]
        heavily = dense_solve(damp_problem(p, ref, 1e8))
        for h, s, r in zip(heavily, solution, ref):
            # With huge damping the solution hugs the reference.
            assert np.linalg.norm(h - r) < np.linalg.norm(s - r)
            assert np.linalg.norm(h) < 1e-3

    def test_light_damping_barely_moves_solution(self):
        p = random_problem(k=4, seed=3)
        solution = dense_solve(p)
        damped = dense_solve(damp_problem(p, solution, 1e-8))
        for a, b in zip(damped, solution):
            assert np.allclose(a, b, atol=1e-6)

    def test_damping_rows_added_for_unobserved_states(self):
        p = random_problem(k=4, seed=4, obs_prob=0.0)
        ref = [np.zeros(n) for n in p.state_dims]
        damped = damp_problem(p, ref, 0.5)
        for step in damped.steps:
            assert step.observation is not None


class TestLMSolver:
    def test_converges_on_pendulum(self):
        problem, truth = pendulum_problem(k=100, seed=5)
        result = LevenbergMarquardtSmoother().smooth(problem)
        assert result.diagnostics["converged"]
        rmse = np.sqrt(np.mean((np.vstack(result.means) - truth) ** 2))
        assert rmse < 0.35

    def test_accepted_objectives_monotone(self):
        problem, _ = pendulum_problem(k=60, seed=6)
        result = LevenbergMarquardtSmoother().smooth(problem)
        objectives = result.diagnostics["trace"].objectives
        assert all(
            b <= a + 1e-9 for a, b in zip(objectives, objectives[1:])
        )

    def test_agrees_with_gauss_newton_on_easy_problem(self):
        problem, _ = pendulum_problem(k=50, seed=7)
        lm = LevenbergMarquardtSmoother().smooth(problem)
        gn = GaussNewtonSmoother().smooth(problem)
        assert lm.residual_sq == pytest.approx(gn.residual_sq, rel=1e-6)

    def test_coordinated_turn(self):
        problem, _ = coordinated_turn_problem(k=50, seed=8)
        result = LevenbergMarquardtSmoother().smooth(problem)
        assert result.diagnostics["converged"]

    def test_inner_runs_nc(self):
        """The damped inner solves never compute covariances — the
        optimization the paper's NC variants exist for (§5.4)."""

        calls = {"nc": 0, "cov": 0}

        class SpyInner:
            name = "spy"

            def smooth(self, problem, backend=None, compute_covariance=True):
                from repro.core.smoother import OddEvenSmoother

                if compute_covariance:
                    calls["cov"] += 1
                else:
                    calls["nc"] += 1
                return OddEvenSmoother(compute_covariance).smooth(
                    problem, backend=backend,
                    compute_covariance=compute_covariance,
                )

        problem, _ = pendulum_problem(k=30, seed=9)
        LevenbergMarquardtSmoother(inner=SpyInner()).smooth(problem)
        assert calls["nc"] >= 1
        assert calls["cov"] == 1  # only the final covariance pass

    def test_skip_final_covariance(self):
        problem, _ = pendulum_problem(k=20, seed=10)
        result = LevenbergMarquardtSmoother().smooth(
            problem, compute_covariance=False
        )
        assert result.covariances is None
