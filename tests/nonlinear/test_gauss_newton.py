"""Tests for the Gauss–Newton iterated smoother."""

import numpy as np
import pytest

from repro.core.smoother import OddEvenSmoother
from repro.kalman.paige_saunders import PaigeSaundersSmoother
from repro.model.dense import dense_solve
from repro.model.generators import random_problem
from repro.model.nonlinear import pendulum_problem
from repro.nonlinear.gauss_newton import GaussNewtonSmoother
from tests.nonlinear.test_ekf import linear_as_nonlinear


class TestOnLinearProblems:
    def test_one_step_solves_linear_problem(self):
        """GN on a linear problem converges in a single iteration."""
        p = random_problem(k=6, seed=0, dims=3, random_cov=True)
        nl = linear_as_nonlinear(p)
        result = GaussNewtonSmoother().smooth(nl)
        oracle = dense_solve(p)
        assert result.diagnostics["iterations"] <= 2
        for a, b in zip(result.means, oracle):
            assert np.allclose(a, b, atol=1e-8)


class TestOnPendulum:
    @pytest.fixture(scope="class")
    def solved(self):
        problem, truth = pendulum_problem(k=120, seed=2)
        return problem, truth, GaussNewtonSmoother().smooth(problem)

    def test_converges(self, solved):
        _p, _t, result = solved
        assert result.diagnostics["converged"]

    def test_objective_monotone_after_first_step(self, solved):
        _p, _t, result = solved
        objectives = result.diagnostics["trace"].objectives
        # Gauss-Newton may overshoot early; the tail must descend.
        assert objectives[-1] <= objectives[1] + 1e-9

    def test_improves_on_ekf(self, solved):
        from repro.nonlinear.ekf import extended_kalman_filter

        problem, truth, result = solved
        ekf = extended_kalman_filter(problem)
        rmse_gn = np.sqrt(np.mean((np.vstack(result.means) - truth) ** 2))
        rmse_ekf = np.sqrt(np.mean((np.vstack(ekf) - truth) ** 2))
        assert rmse_gn < rmse_ekf

    def test_covariances_computed_at_solution(self, solved):
        _p, _t, result = solved
        assert result.covariances is not None
        for cov in result.covariances:
            assert np.all(np.linalg.eigvalsh(cov) > 0)

    def test_stationary_point(self, solved):
        """Re-linearizing at the solution and solving changes nothing."""
        problem, _t, result = solved
        linear = problem.linearize(result.means)
        resolved = OddEvenSmoother(compute_covariance=False).smooth(linear)
        for a, b in zip(result.means, resolved.means):
            assert np.allclose(a, b, atol=1e-6)


class TestConfigurations:
    def test_inner_solver_choice_does_not_matter(self):
        problem, _ = pendulum_problem(k=40, seed=3)
        a = GaussNewtonSmoother(inner=OddEvenSmoother()).smooth(problem)
        b = GaussNewtonSmoother(inner=PaigeSaundersSmoother()).smooth(problem)
        for x, y in zip(a.means, b.means):
            assert np.allclose(x, y, atol=1e-7)

    def test_explicit_initial_trajectory(self):
        problem, truth = pendulum_problem(k=30, seed=1)
        result = GaussNewtonSmoother().smooth(
            problem, initial=list(truth)
        )
        assert result.diagnostics["converged"]

    def test_line_search_variant_monotone(self):
        """The line-search smoother (ref. [17]) has a monotone
        objective trace on the batch where full GN steps stall."""
        problem, _ = pendulum_problem(k=30, seed=4)
        ls = GaussNewtonSmoother(line_search=True, max_iterations=40).smooth(
            problem, compute_covariance=False
        )
        objectives = ls.diagnostics["trace"].objectives
        assert all(
            b <= a + 1e-9 for a, b in zip(objectives, objectives[1:])
        )
        plain = GaussNewtonSmoother(max_iterations=40).smooth(
            problem, compute_covariance=False
        )
        assert ls.residual_sq <= plain.residual_sq + 1e-6

    def test_line_search_matches_full_steps_on_easy_problem(self):
        problem, _ = pendulum_problem(k=40, seed=1)
        ls = GaussNewtonSmoother(line_search=True).smooth(problem)
        full = GaussNewtonSmoother().smooth(problem)
        assert ls.residual_sq == pytest.approx(full.residual_sq, rel=1e-6)

    def test_undamped_gn_can_stall_where_lm_succeeds(self):
        """Motivates LM (ref. [17]): full GN steps converge only
        linearly (or stall) on some strongly nonlinear batches."""
        from repro.nonlinear.levenberg_marquardt import (
            LevenbergMarquardtSmoother,
        )

        problem, _ = pendulum_problem(k=30, seed=4)
        gn = GaussNewtonSmoother(max_iterations=20).smooth(
            problem, compute_covariance=False
        )
        lm = LevenbergMarquardtSmoother().smooth(
            problem, compute_covariance=False
        )
        assert lm.residual_sq <= gn.residual_sq + 1e-9

    def test_skip_covariances(self):
        problem, _ = pendulum_problem(k=20, seed=5)
        result = GaussNewtonSmoother().smooth(
            problem, compute_covariance=False
        )
        assert result.covariances is None

    def test_max_iterations_respected(self):
        problem, _ = pendulum_problem(k=30, seed=6)
        result = GaussNewtonSmoother(max_iterations=1).smooth(problem)
        assert result.diagnostics["iterations"] == 1
