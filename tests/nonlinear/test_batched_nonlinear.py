"""Batched iterate-and-regroup smoothing for the nonlinear family.

The contract under test: ``smooth_many`` over a fleet of nonlinear
problems performs ONE stacked linear solve per outer iteration (not
one per problem per iteration), keeps every per-problem damping and
convergence decision independent, and — for a uniform-length fleet —
returns results *bit-identical* to the per-problem ``smooth`` loop,
because ``smooth`` itself drives the same batched engine with a
workload of one and the stacked kernels are slice-invariant.
"""

import numpy as np
import pytest

import repro
from repro import obs
from repro.api import EstimatorConfig
from repro.model.nonlinear import pendulum_problem
from repro.nonlinear.gauss_newton import GaussNewtonSmoother
from repro.nonlinear.ipls import IteratedPosteriorLinearizationSmoother
from repro.nonlinear.levenberg_marquardt import LevenbergMarquardtSmoother

NONLINEAR_NAMES = ["gauss-newton", "ipls", "levenberg-marquardt"]


def stacked_solve_count():
    """How many times BatchSmoother.smooth_many ran in this test."""
    return obs.get_registry().counter(
        "repro_batch_smooth_many_total"
    ).value


def fleet(n, k=18):
    return [pendulum_problem(k, seed=seed)[0] for seed in range(n)]


class TestBitIdentity:
    def test_ipls_32_problems_bit_identical_to_loop(self):
        """The headline acceptance: a 32-problem uniform-length fleet
        smooths bit-for-bit like the per-problem loop."""
        problems = fleet(32)
        # A looser tolerance keeps the 32 solo smooths cheap; the
        # bit-identity claim is tolerance-independent.
        s = IteratedPosteriorLinearizationSmoother(tol=1e-6)
        batched = s.smooth_many(problems)
        looped = [s.smooth(p) for p in problems]
        for a, b in zip(batched, looped):
            assert a.diagnostics["iterations"] == b.diagnostics["iterations"]
            for x, y in zip(a.means, b.means):
                assert np.array_equal(x, y)
            for x, y in zip(a.covariances, b.covariances):
                assert np.array_equal(x, y)

    @pytest.mark.parametrize("name", NONLINEAR_NAMES)
    def test_slice_for_slice_agreement_with_smooth(self, name):
        """GN and LM's sequential ``smooth`` uses a different inner
        solver (OddEvenSmoother vs the stacked batch kernels), so the
        bar there is 1e-8 agreement; IPLS shares one engine and is
        exact."""
        problems = fleet(6)
        s = repro.make_smoother(name)
        batched = s.smooth_many(problems)
        looped = [s.smooth(p) for p in problems]
        for a, b in zip(batched, looped):
            for x, y in zip(a.means, b.means):
                np.testing.assert_allclose(x, y, atol=1e-8)
            assert a.covariances is not None
            for x, y in zip(a.covariances, b.covariances):
                np.testing.assert_allclose(x, y, atol=1e-6)


class TestOneStackedSolvePerIteration:
    def test_ipls_solve_count_is_max_iterations_not_sum(self):
        """32 problems converging after [n_0..n_31] iterations must
        cost max(n_i) stacked solves — the whole point of batching.
        A per-problem loop would cost sum(n_i)."""
        problems = fleet(32)
        s = IteratedPosteriorLinearizationSmoother(tol=1e-6)
        before = stacked_solve_count()
        results = s.smooth_many(problems)
        solves = stacked_solve_count() - before
        iters = [r.diagnostics["iterations"] for r in results]
        assert solves == max(iters)
        assert solves < sum(iters)

    def test_gn_adds_one_final_covariance_pass(self):
        problems = fleet(8)
        s = GaussNewtonSmoother()
        before = stacked_solve_count()
        results = s.smooth_many(problems)
        solves = stacked_solve_count() - before
        iters = [r.diagnostics["iterations"] for r in results]
        assert solves == max(iters) + 1

    def test_nc_inner_iterations_when_covariance_skipped(self):
        """Without a covariance request the sigma-point IPLS still
        needs per-iteration covariances (they feed the next SLR), but
        GN iterates in NC mode with no final pass at all."""
        problems = fleet(8)
        config = EstimatorConfig(compute_covariance=False)
        before = stacked_solve_count()
        results = GaussNewtonSmoother().smooth_many(
            problems, config=config
        )
        solves = stacked_solve_count() - before
        assert solves == max(
            r.diagnostics["iterations"] for r in results
        )
        assert all(r.covariances is None for r in results)


class TestPerProblemConvergenceMasks:
    def test_iteration_counts_are_independent(self):
        """A fleet mixing easy and hard problems: each result reports
        its own iteration count, identical to what the problem needs
        when smoothed alone."""
        problems = [
            pendulum_problem(30, seed=0, r=0.01)[0],   # easy
            pendulum_problem(30, seed=1)[0],
            pendulum_problem(30, seed=2, r=0.5)[0],    # hard
            pendulum_problem(30, seed=3)[0],
        ]
        s = IteratedPosteriorLinearizationSmoother()
        batched = s.smooth_many(problems)
        alone = [
            s.smooth(p).diagnostics["iterations"] for p in problems
        ]
        got = [r.diagnostics["iterations"] for r in batched]
        assert got == alone
        assert len(set(got)) > 1  # genuinely mixed difficulty

    def test_converged_problem_stops_updating(self):
        """Once a problem's mask flips, later outer iterations (run
        for the stragglers) must not perturb its trajectory: the
        batched result equals its solo result bitwise even though the
        batch kept iterating."""
        problems = [
            pendulum_problem(30, seed=0, r=0.01)[0],
            pendulum_problem(30, seed=2, r=0.5)[0],
        ]
        s = IteratedPosteriorLinearizationSmoother()
        batched = s.smooth_many(problems)
        solo = s.smooth(problems[0])
        assert (
            batched[0].diagnostics["iterations"]
            < batched[1].diagnostics["iterations"]
        )
        for x, y in zip(batched[0].means, solo.means):
            assert np.array_equal(x, y)

    def test_lm_damping_schedules_independent(self):
        problems = [
            pendulum_problem(30, seed=0, r=0.01)[0],
            pendulum_problem(30, seed=2, r=0.5)[0],
        ]
        results = LevenbergMarquardtSmoother().smooth_many(problems)
        lams = [r.diagnostics["final_lambda"] for r in results]
        traces = [r.diagnostics["trace"] for r in results]
        assert all(t.converged for t in traces)
        assert lams[0] != lams[1]


class TestEdgesAndDtype:
    @pytest.mark.parametrize("name", NONLINEAR_NAMES)
    def test_empty_workload(self, name):
        assert repro.make_smoother(name).smooth_many([]) == []

    def test_singleton_fleet_equals_smooth(self):
        p = pendulum_problem(25, seed=7)[0]
        s = IteratedPosteriorLinearizationSmoother()
        a = s.smooth_many([p])[0]
        b = s.smooth(p)
        for x, y in zip(a.means, b.means):
            assert np.array_equal(x, y)

    def test_mixed_precision_config(self):
        """dtype='mixed' re-linearizes in float64 (the refinement
        contract needs the true model) while the stacked solves run
        float32 + refine; results stay close to the float64 run."""
        problems = fleet(4)
        s = IteratedPosteriorLinearizationSmoother()
        ref = s.smooth_many(problems)
        got = s.smooth_many(
            problems, config=EstimatorConfig(dtype="mixed")
        )
        for a, b in zip(ref, got):
            assert b.means[0].dtype == np.float64
            for x, y in zip(a.means, b.means):
                np.testing.assert_allclose(x, y, atol=1e-6)

    def test_float32_request_yields_float32(self):
        problems = fleet(3)
        results = IteratedPosteriorLinearizationSmoother().smooth_many(
            problems,
            config=EstimatorConfig(
                dtype=np.float32, compute_covariance=False
            ),
        )
        for r in results:
            assert r.means[0].dtype == np.float32
