"""Iterated posterior-linearization smoother (IPLS) tests.

IPLS must (a) collapse to the linear solution on linear problems,
(b) agree with Gauss-Newton to 1e-8 on near-linear problems, and
(c) beat a single-pass EKF-linearized solve on genuinely nonlinear
tracking scenarios — that last gap is the whole reason the iterated
sigma-point smoother exists.
"""

import numpy as np
import pytest

from repro.api import EstimatorConfig
from repro.kalman.paige_saunders import PaigeSaundersSmoother
from repro.model.generators import random_problem
from repro.model.nonlinear import (
    JacobianLinearizer,
    SigmaPointLinearizer,
    bearings_only_tunnel_problem,
    cubic_sensor_problem,
    pendulum_problem,
)
from repro.nonlinear.ekf import extended_kalman_filter
from repro.nonlinear.gauss_newton import GaussNewtonSmoother
from repro.nonlinear.ipls import (
    IPLSTrace,
    IteratedPosteriorLinearizationSmoother,
)
from tests.nonlinear.test_ekf import linear_as_nonlinear


def rmse(means, truth, dims=None):
    sel = slice(None) if dims is None else slice(0, dims)
    return np.sqrt(
        np.mean(
            [(m[sel] - t[sel]) @ (m[sel] - t[sel])
             for m, t in zip(means, truth)]
        )
    )


def near_linear_problem(k, eps, seed=0):
    """Stable 2-D linear dynamics perturbed by ``eps * sin`` terms."""
    from repro.model.nonlinear import (
        NonlinearFunction,
        NonlinearProblem,
        NonlinearStep,
    )
    from repro.model.steps import GaussianPrior

    rng = np.random.default_rng(seed)
    F = np.array([[0.9, 0.1], [-0.1, 0.9]])

    def evo_fn(x):
        return F @ x + eps * np.sin(x)

    def evo_jac(x):
        return F + eps * np.diag(np.cos(x))

    def obs_fn(x):
        return x + eps * np.sin(x)

    def obs_jac(x):
        return np.eye(2) + eps * np.diag(np.cos(x))

    truth = np.zeros((k + 1, 2))
    truth[0] = [1.0, -0.5]
    steps = []
    for i in range(k + 1):
        if i > 0:
            truth[i] = evo_fn(truth[i - 1]) + 0.1 * rng.standard_normal(2)
        o = obs_fn(truth[i]) + 0.2 * rng.standard_normal(2)
        steps.append(
            NonlinearStep(
                state_dim=2,
                evolution_fn=None
                if i == 0
                else NonlinearFunction(evo_fn, evo_jac),
                evolution_cov=None if i == 0 else 0.01 * np.eye(2),
                observation_fn=NonlinearFunction(obs_fn, obs_jac),
                observation=o,
                observation_cov=0.04 * np.eye(2),
            )
        )
    prior = GaussianPrior(mean=truth[0], cov=0.5 * np.eye(2))
    return NonlinearProblem(steps, prior=prior)


def single_pass_ekf_solve(problem):
    """One EKF-trajectory linearization, one linear solve — the
    non-iterated baseline IPLS has to beat."""
    linear = problem.linearize(extended_kalman_filter(problem))
    return PaigeSaundersSmoother().smooth(linear).means


class TestOnLinearProblems:
    def test_matches_oracle_including_covariances(self):
        p = random_problem(k=20, seed=3, dims=3, random_cov=True)
        nl = linear_as_nonlinear(p)
        oracle = PaigeSaundersSmoother().smooth(p)
        result = IteratedPosteriorLinearizationSmoother().smooth(nl)
        assert result.diagnostics["iterations"] <= 3
        for a, b in zip(result.means, oracle.means):
            np.testing.assert_allclose(a, b, atol=1e-8)
        for a, b in zip(result.covariances, oracle.covariances):
            np.testing.assert_allclose(a, b, atol=1e-8)

    def test_matches_gauss_newton_on_near_linear_problem(self):
        """With an eps-small nonlinearity, sigma-point SLR and
        Jacobian linearization see the same local model (their fixed
        points differ at O(eps * P)), so IPLS and Gauss-Newton must
        agree to 1e-8."""
        problem = near_linear_problem(k=40, eps=1e-7, seed=4)
        ipls = IteratedPosteriorLinearizationSmoother(
            tol=1e-13, obj_tol=0.0
        ).smooth(problem)
        gn = GaussNewtonSmoother(tol=1e-13).smooth(problem)
        assert ipls.diagnostics["converged"]
        for a, b in zip(ipls.means, gn.means):
            np.testing.assert_allclose(a, b, atol=1e-8)


class TestOnPendulum:
    @pytest.fixture(scope="class")
    def solved(self):
        problem, truth = pendulum_problem(k=120, seed=2)
        result = IteratedPosteriorLinearizationSmoother().smooth(problem)
        return problem, truth, result

    def test_converges(self, solved):
        _p, _t, result = solved
        assert result.diagnostics["converged"]
        assert result.diagnostics["linearizer"] == "sigma-point"

    def test_trace_records_every_iteration(self, solved):
        _p, _t, result = solved
        trace = result.diagnostics["trace"]
        assert isinstance(trace, IPLSTrace)
        assert trace.iterations == result.diagnostics["iterations"]
        assert len(trace.step_norms) == trace.iterations
        assert trace.converged

    def test_beats_single_pass_ekf_linearization(self):
        """Averaged over realizations — a single seed's RMSE ordering
        is noise; the iterated re-linearization advantage is not."""
        gaps = []
        for seed in range(4):
            problem, truth = pendulum_problem(k=120, seed=seed)
            result = IteratedPosteriorLinearizationSmoother().smooth(
                problem
            )
            gaps.append(
                rmse(single_pass_ekf_solve(problem), truth)
                - rmse(result.means, truth)
            )
        assert np.mean(gaps) > 0

    def test_covariances_positive_definite(self, solved):
        _p, _t, result = solved
        assert result.covariances is not None
        for cov in result.covariances:
            assert np.all(np.linalg.eigvalsh(cov) > 0)

    def test_means_only_request_skips_covariances(self):
        problem, _ = pendulum_problem(k=30, seed=0)
        result = IteratedPosteriorLinearizationSmoother().smooth(
            problem, config=EstimatorConfig(compute_covariance=False)
        )
        assert result.covariances is None

    def test_initial_trajectory_honored(self):
        problem, truth = pendulum_problem(k=30, seed=0)
        s = IteratedPosteriorLinearizationSmoother()
        warm = s.smooth(problem, initial=list(truth))
        cold = s.smooth(problem)
        # Same fixed point from both starts...
        for a, b in zip(warm.means, cold.means):
            np.testing.assert_allclose(a, b, atol=1e-6)
        # ...and the truth-started run may not need more iterations.
        assert (
            warm.diagnostics["iterations"]
            <= cold.diagnostics["iterations"]
        )


class TestOnTunnel:
    def test_converges(self):
        problem, truth = bearings_only_tunnel_problem(k=60, seed=0)
        result = IteratedPosteriorLinearizationSmoother().smooth(problem)
        assert result.diagnostics["converged"]
        assert rmse(result.means, truth, dims=2) < 0.5

    def test_beats_single_pass_ekf_linearization(self):
        gaps = []
        for seed in range(6):
            problem, truth = bearings_only_tunnel_problem(k=60, seed=seed)
            result = IteratedPosteriorLinearizationSmoother().smooth(
                problem
            )
            gaps.append(
                rmse(single_pass_ekf_solve(problem), truth, dims=2)
                - rmse(result.means, truth, dims=2)
            )
        assert np.mean(gaps) > 0


class TestOnCubicSensor:
    def test_converges_with_jacobian_and_sigma_point(self):
        problem, _ = cubic_sensor_problem(k=50)
        slr = IteratedPosteriorLinearizationSmoother().smooth(problem)
        assert slr.diagnostics["converged"]

    def test_damping_tames_the_limit_cycle(self):
        """seed=2 drives undamped IPLS into the classic period-2
        oscillation; damping shrinks the oscillation instead of
        letting it persist at full amplitude."""
        problem, _ = cubic_sensor_problem(k=50, seed=2)
        undamped = IteratedPosteriorLinearizationSmoother(
            max_iterations=40
        ).smooth(problem)
        damped = IteratedPosteriorLinearizationSmoother(
            max_iterations=40, damping=0.5
        ).smooth(problem)
        u = undamped.diagnostics["trace"].objectives
        d = damped.diagnostics["trace"].objectives
        assert abs(d[-1] - d[-2]) < abs(u[-1] - u[-2])


class TestConfiguration:
    def test_jacobian_linearizer_variant(self):
        """linearizer=JacobianLinearizer() is iterated EKS; it agrees
        with Gauss-Newton's fixed point on the pendulum."""
        problem, _ = pendulum_problem(k=60, seed=1)
        jac = IteratedPosteriorLinearizationSmoother(
            linearizer=JacobianLinearizer(), tol=1e-13, obj_tol=0.0
        ).smooth(problem)
        gn = GaussNewtonSmoother(tol=1e-13).smooth(problem)
        assert jac.diagnostics["linearizer"] == "jacobian"
        for a, b in zip(jac.means, gn.means):
            np.testing.assert_allclose(a, b, atol=1e-7)
        assert jac.covariances is not None

    def test_registry_constructs_with_options(self):
        import repro

        s = repro.make_smoother("ipls", max_iterations=7, damping=0.8)
        assert isinstance(s, IteratedPosteriorLinearizationSmoother)
        assert s.max_iterations == 7
        assert s.capabilities.iterative

    def test_custom_sigma_parameters_forwarded(self):
        lin = SigmaPointLinearizer(alpha=0.5, beta=2.0, kappa=1.0)
        s = IteratedPosteriorLinearizationSmoother(linearizer=lin)
        problem, _ = pendulum_problem(k=20, seed=0)
        result = s.smooth(problem)
        assert result.diagnostics["converged"]

    def test_damping_validated(self):
        with pytest.raises(ValueError, match="damping"):
            IteratedPosteriorLinearizationSmoother(damping=0.0)
        with pytest.raises(ValueError, match="damping"):
            IteratedPosteriorLinearizationSmoother(damping=1.5)

    def test_algorithm_string_names_the_stack(self):
        problem, _ = pendulum_problem(k=10, seed=0)
        result = IteratedPosteriorLinearizationSmoother().smooth(problem)
        assert result.algorithm == "ipls[sigma-point+batch-odd-even]"

    def test_iterations_histogram_recorded(self):
        from repro import obs

        problem, _ = pendulum_problem(k=20, seed=0)
        IteratedPosteriorLinearizationSmoother().smooth(problem)
        hist = obs.get_registry().histogram("repro_ipls_iterations")
        assert hist.count == 1
