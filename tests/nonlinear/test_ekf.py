"""Tests for the extended Kalman filter."""

import numpy as np
import pytest

from repro.kalman.kf import KalmanFilter
from repro.model.generators import random_problem
from repro.model.nonlinear import (
    NonlinearFunction,
    NonlinearProblem,
    NonlinearStep,
    pendulum_problem,
)
from repro.nonlinear.ekf import extended_kalman_filter


def linear_as_nonlinear(p):
    """Wrap a linear problem as a NonlinearProblem (H = I)."""
    steps = []
    for i, s in enumerate(p.steps):
        evo_fn = None
        cov = None
        c = None
        if i > 0:
            f = s.evolution.F
            evo_fn = NonlinearFunction(
                (lambda F: lambda x: F @ x)(f), (lambda F: lambda x: F)(f)
            )
            cov = s.evolution.K.covariance()
            c = s.evolution.c
        obs_fn = obs = obs_cov = None
        if s.observation is not None:
            g = s.observation.G
            obs_fn = NonlinearFunction(
                (lambda G: lambda x: G @ x)(g), (lambda G: lambda x: G)(g)
            )
            obs = s.observation.o
            obs_cov = s.observation.L.covariance()
        steps.append(
            NonlinearStep(
                state_dim=s.state_dim,
                evolution_fn=evo_fn,
                evolution_cov=cov,
                c=c,
                observation_fn=obs_fn,
                observation=obs,
                observation_cov=obs_cov,
            )
        )
    return NonlinearProblem(steps, prior=p.prior)


class TestEKF:
    def test_reduces_to_kf_on_linear_problem(self):
        p = random_problem(k=8, seed=0, dims=3, random_cov=True)
        kf_means = KalmanFilter().filter(p).means
        ekf_means = extended_kalman_filter(linear_as_nonlinear(p))
        for a, b in zip(ekf_means, kf_means):
            assert np.allclose(a, b, atol=1e-9)

    def test_requires_prior(self):
        problem, _ = pendulum_problem(k=3)
        problem.prior = None
        with pytest.raises(ValueError, match="prior"):
            extended_kalman_filter(problem)

    def test_tracks_pendulum(self):
        problem, truth = pendulum_problem(k=150, seed=1)
        means = extended_kalman_filter(problem)
        rmse = np.sqrt(np.mean((np.vstack(means) - truth) ** 2))
        # Prior-only guess has RMSE ~ the signal scale; EKF must do
        # clearly better.
        baseline = np.sqrt(np.mean((truth - truth[0]) ** 2))
        assert rmse < 0.5 * baseline
