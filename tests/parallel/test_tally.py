"""Tests for the cost-accounting substrate."""

import threading

import numpy as np

from repro.linalg.householder import QRFactor
from repro.parallel.tally import (
    CostTally,
    active_tally,
    add_cost,
    measure_flops,
    tally_scope,
)


class TestCostTally:
    def test_add(self):
        t = CostTally()
        t.add(10.0, 5.0)
        t.add(2.0)
        assert t.flops == 12.0
        assert t.bytes_moved == 5.0
        assert t.kernel_calls == 2

    def test_merge(self):
        a, b = CostTally(1.0, 2.0, 3), CostTally(10.0, 20.0, 30)
        a.merge(b)
        assert (a.flops, a.bytes_moved, a.kernel_calls) == (11.0, 22.0, 33)

    def test_snapshot_is_independent(self):
        t = CostTally(1.0)
        s = t.snapshot()
        t.add(5.0)
        assert s.flops == 1.0

    def test_bool(self):
        assert not CostTally()
        assert CostTally(kernel_calls=1)


class TestScopes:
    def test_no_active_tally_by_default(self):
        assert active_tally() is None
        add_cost(100.0)  # must be a silent no-op

    def test_scope_captures(self):
        with tally_scope() as t:
            add_cost(7.0, 3.0)
        assert t.flops == 7.0
        assert active_tally() is None

    def test_nested_scopes_both_capture(self):
        with tally_scope() as outer:
            add_cost(1.0)
            with tally_scope() as inner:
                add_cost(10.0)
            add_cost(100.0)
        assert inner.flops == 10.0
        assert outer.flops == 111.0

    def test_thread_locality(self):
        """A tally on one thread must not capture another thread's work."""
        results = {}

        def worker():
            with tally_scope() as t:
                add_cost(5.0)
            results["worker"] = t.flops

        with tally_scope() as main_tally:
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert results["worker"] == 5.0
        assert main_tally.flops == 0.0


class TestMeasureFlops:
    def test_returns_result_and_tally(self):
        a = np.random.default_rng(0).standard_normal((8, 4))
        qf, tally = measure_flops(QRFactor, a)
        assert qf.r.shape == (4, 4)
        assert tally.flops > 0
        assert tally.kernel_calls == 1

    def test_kernel_costs_match_formula(self):
        from repro.linalg.flops import qr_flops

        a = np.random.default_rng(1).standard_normal((10, 6))
        _qf, tally = measure_flops(QRFactor, a)
        assert tally.flops == qr_flops(10, 6)
