"""Tests for the discrete-event schedulers and their theoretical bounds."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.parallel.machine import GOLD_6238R, GRAVITON3, MachineModel
from repro.parallel.scheduler import (
    greedy_schedule,
    simulate_speedup_curve,
    work_stealing_schedule,
)
from repro.parallel.task_graph import PhaseRecord, TaskGraph, TaskRecord

#: A frictionless machine: pure compute, no overheads — Brent's bound
#: holds exactly on it.
IDEAL = MachineModel(
    name="ideal",
    cores=64,
    cores_per_socket=64,
    gflops_per_core=1.0,
    turbo_single=1.0,
    turbo_all=1.0,
    bw_single_gbs=1e12,
    bw_socket_gbs=1e15,
    numa_efficiency=1.0,
    spawn_overhead_s=0.0,
    kernel_overhead_s=0.0,
    barrier_base_s=0.0,
    barrier_log_s=0.0,
)


def graph_from_costs(costs_per_phase, kind="parallel_for") -> TaskGraph:
    graph = TaskGraph()
    for name, costs in costs_per_phase:
        phase = PhaseRecord(name=name, kind=kind)
        phase.tasks = [TaskRecord(flops=c) for c in costs]
        graph.phases.append(phase)
    return graph


task_lists = st.lists(
    st.lists(
        st.floats(min_value=1e3, max_value=1e9, allow_nan=False),
        min_size=1,
        max_size=30,
    ),
    min_size=1,
    max_size=5,
)


class TestGreedyBounds:
    @given(task_lists, st.sampled_from([1, 2, 3, 7, 16, 64]))
    def test_brent_bounds(self, phases, p):
        """max(T1/p, span) <= makespan <= T1/p + span (greedy theorem)."""
        graph = graph_from_costs(
            [(f"ph{i}", costs) for i, costs in enumerate(phases)]
        )
        rate = 1e9  # flops/s on the ideal machine
        t1 = graph.work_flops / rate
        span = (
            sum(max(costs) for costs in phases) / rate
        )  # per-phase barriers
        makespan = greedy_schedule(graph, IDEAL, p).seconds
        assert makespan >= max(t1 / p, span) - 1e-12
        assert makespan <= t1 / p + span + 1e-12

    def test_single_core_equals_work(self):
        graph = graph_from_costs([("a", [1e6, 2e6, 3e6])])
        assert greedy_schedule(graph, IDEAL, 1).seconds == pytest.approx(
            6e6 / 1e9
        )

    def test_perfect_split(self):
        graph = graph_from_costs([("a", [1e6] * 8)])
        assert greedy_schedule(graph, IDEAL, 8).seconds == pytest.approx(
            1e6 / 1e9
        )

    def test_serial_phase_ignores_cores(self):
        graph = graph_from_costs([("s", [1e6] * 10)], kind="serial")
        t1 = greedy_schedule(graph, IDEAL, 1).seconds
        t64 = greedy_schedule(graph, IDEAL, 64).seconds
        assert t64 == pytest.approx(t1)

    def test_more_cores_never_slower(self):
        graph = graph_from_costs(
            [("a", list(np.linspace(1e5, 1e7, 37))), ("b", [5e6] * 11)]
        )
        times = simulate_speedup_curve(graph, IDEAL, [1, 2, 4, 8, 16, 32, 64])
        values = list(times.values())
        assert all(a >= b - 1e-15 for a, b in zip(values, values[1:]))


class TestValidation:
    def test_rejects_zero_cores(self):
        graph = graph_from_costs([("a", [1.0])])
        with pytest.raises(ValueError):
            greedy_schedule(graph, IDEAL, 0)

    def test_rejects_oversubscription(self):
        graph = graph_from_costs([("a", [1.0])])
        with pytest.raises(ValueError, match="has 64 cores"):
            greedy_schedule(graph, IDEAL, 65)

    def test_empty_graph(self):
        assert greedy_schedule(TaskGraph(), IDEAL, 4).seconds == 0.0


class TestPhaseAccounting:
    def test_phase_seconds_sum_to_total(self):
        graph = graph_from_costs([("a", [1e6] * 4), ("b", [2e6] * 4)])
        result = greedy_schedule(graph, GRAVITON3, 8)
        assert sum(result.phase_seconds.values()) == pytest.approx(
            result.seconds
        )

    def test_repeated_phase_names_accumulate(self):
        graph = graph_from_costs([("x", [1e6]), ("x", [1e6])])
        result = greedy_schedule(graph, GRAVITON3, 1)
        assert set(result.phase_seconds) == {"x"}


class TestWorkStealing:
    def test_reproducible_with_seed(self):
        graph = graph_from_costs([("a", [1e6] * 50)])
        a = work_stealing_schedule(graph, GOLD_6238R, 28, seed=7).seconds
        b = work_stealing_schedule(graph, GOLD_6238R, 28, seed=7).seconds
        assert a == b

    def test_different_seeds_differ(self):
        graph = graph_from_costs([("a", [1e6] * 50)])
        times = {
            work_stealing_schedule(graph, GOLD_6238R, 28, seed=s).seconds
            for s in range(10)
        }
        assert len(times) > 1

    def test_variation_grows_with_cores(self):
        """The Fig 5 property: multicore spread exceeds 1-core spread."""
        graph = graph_from_costs([("a", [1e6] * 200)])

        def spread(p):
            times = np.array(
                [
                    work_stealing_schedule(
                        graph, GOLD_6238R, p, seed=s
                    ).seconds
                    for s in range(40)
                ]
            )
            return float(np.std(times) / np.median(times))

        assert spread(28) > 2 * spread(1)

    def test_stays_near_greedy(self):
        graph = graph_from_costs([("a", [1e6] * 100)])
        det = greedy_schedule(graph, GOLD_6238R, 28).seconds
        noisy = work_stealing_schedule(graph, GOLD_6238R, 28, seed=1).seconds
        assert 0.7 * det < noisy < 1.4 * det

    def test_accepts_generator(self):
        graph = graph_from_costs([("a", [1e6] * 10)])
        rng = np.random.default_rng(3)
        out = work_stealing_schedule(graph, GOLD_6238R, 4, seed=rng)
        assert out.seconds > 0
