"""Tests for the execution backends (the TBB stand-in)."""

import numpy as np
import pytest

from repro.linalg.householder import QRFactor
from repro.parallel.backend import (
    RecordingBackend,
    SerialBackend,
    ThreadPoolBackend,
    blocked_ranges,
)


class TestBlockedRanges:
    def test_exact_division(self):
        blocks = blocked_ranges(10, 5)
        assert [list(b) for b in blocks] == [[0, 1, 2, 3, 4], [5, 6, 7, 8, 9]]

    def test_remainder(self):
        blocks = blocked_ranges(7, 3)
        assert [len(b) for b in blocks] == [3, 3, 1]

    def test_single_block(self):
        assert len(blocked_ranges(3, 100)) == 1

    def test_empty(self):
        assert blocked_ranges(0, 4) == []

    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            blocked_ranges(5, 0)


@pytest.mark.parametrize(
    "backend_factory",
    [
        lambda: SerialBackend(),
        lambda: ThreadPoolBackend(3, block_size=2),
        lambda: RecordingBackend(block_size=2),
    ],
    ids=["serial", "threads", "recording"],
)
class TestMapSemantics:
    def test_map_preserves_order(self, backend_factory):
        with backend_factory() as backend:
            out = backend.map(range(17), lambda i: i * i)
        assert out == [i * i for i in range(17)]

    def test_map_arbitrary_items(self, backend_factory):
        with backend_factory() as backend:
            out = backend.map(["a", "bb", "ccc"], len)
        assert out == [1, 2, 3]

    def test_parallel_for_side_effects(self, backend_factory):
        results = [0] * 23
        with backend_factory() as backend:

            def body(i):
                results[i] = i + 1

            backend.parallel_for(23, body)
        assert results == list(range(1, 24))

    def test_serial_for_runs_in_order(self, backend_factory):
        seen = []
        with backend_factory() as backend:
            backend.serial_for(6, seen.append)
        assert seen == list(range(6))

    def test_empty_map(self, backend_factory):
        with backend_factory() as backend:
            assert backend.map([], lambda x: x) == []


class TestValidation:
    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            SerialBackend(block_size=0)

    def test_rejects_bad_thread_count(self):
        with pytest.raises(ValueError):
            ThreadPoolBackend(0)


class TestRecordingBackend:
    def test_phases_and_tasks(self):
        backend = RecordingBackend(block_size=4)
        backend.map(range(10), lambda i: i, phase="phase-one")
        graph = backend.graph
        assert len(graph.phases) == 1
        phase = graph.phases[0]
        assert phase.name == "phase-one"
        assert phase.kind == "parallel_for"
        assert len(phase.tasks) == 3  # ceil(10 / 4)
        assert [t.items for t in phase.tasks] == [4, 4, 2]

    def test_records_kernel_costs(self):
        backend = RecordingBackend(block_size=1)
        a = np.random.default_rng(0).standard_normal((6, 3))
        backend.map(range(3), lambda i: QRFactor(a), phase="qr")
        tasks = backend.graph.phases[0].tasks
        assert all(t.flops > 0 for t in tasks)
        assert all(t.kernel_calls == 1 for t in tasks)

    def test_serial_phase_kind(self):
        backend = RecordingBackend()
        backend.serial_for(5, lambda i: None, phase="sweep")
        phase = backend.graph.phases[0]
        assert phase.kind == "serial"
        assert len(phase.tasks) == 5

    def test_reset_returns_old_graph(self):
        backend = RecordingBackend()
        backend.map(range(3), lambda i: i, phase="a")
        old = backend.reset()
        assert len(old.phases) == 1
        assert len(backend.graph.phases) == 0

    def test_block_size_override(self):
        backend = RecordingBackend(block_size=10)
        backend.map(range(10), lambda i: i, phase="x", block_size=1)
        assert len(backend.graph.phases[0].tasks) == 10


class TestThreadPoolBackend:
    def test_actually_uses_threads(self):
        import threading

        seen = set()
        with ThreadPoolBackend(4, block_size=1) as backend:

            def body(i):
                seen.add(threading.get_ident())
                return i

            backend.map(range(64), body)
        # At least the pool's threads or the main thread participated.
        assert len(seen) >= 1

    def test_small_input_stays_inline(self):
        import threading

        main = threading.get_ident()
        seen = []
        with ThreadPoolBackend(4, block_size=100) as backend:
            backend.map(range(5), lambda i: seen.append(threading.get_ident()))
        assert set(seen) == {main}

    def test_exceptions_propagate(self):
        with ThreadPoolBackend(2, block_size=1) as backend:
            with pytest.raises(RuntimeError, match="boom"):

                def body(i):
                    if i == 33:
                        raise RuntimeError("boom")
                    return i

                backend.map(range(64), body)
