"""Tests for the execution backends (the TBB stand-in)."""

import numpy as np
import pytest

from repro.linalg.householder import QRFactor
from repro.parallel.backend import (
    RecordingBackend,
    SerialBackend,
    ThreadPoolBackend,
    blocked_ranges,
)


class TestBlockedRanges:
    def test_exact_division(self):
        blocks = blocked_ranges(10, 5)
        assert [list(b) for b in blocks] == [[0, 1, 2, 3, 4], [5, 6, 7, 8, 9]]

    def test_remainder(self):
        blocks = blocked_ranges(7, 3)
        assert [len(b) for b in blocks] == [3, 3, 1]

    def test_remainder_block_covers_all_items(self):
        # The trailing remainder block must pick up exactly the
        # leftover items, for every block size.
        for n_items in range(0, 25):
            for block_size in range(1, 12):
                blocks = blocked_ranges(n_items, block_size)
                flat = [i for block in blocks for i in block]
                assert flat == list(range(n_items)), (n_items, block_size)
                if blocks:
                    assert all(
                        len(b) == block_size for b in blocks[:-1]
                    )
                    assert 1 <= len(blocks[-1]) <= block_size

    def test_single_block(self):
        assert len(blocked_ranges(3, 100)) == 1

    def test_empty(self):
        assert blocked_ranges(0, 4) == []

    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            blocked_ranges(5, 0)


@pytest.mark.parametrize(
    "backend_factory",
    [
        lambda: SerialBackend(),
        lambda: ThreadPoolBackend(3, block_size=2),
        lambda: RecordingBackend(block_size=2),
    ],
    ids=["serial", "threads", "recording"],
)
class TestMapSemantics:
    def test_map_preserves_order(self, backend_factory):
        with backend_factory() as backend:
            out = backend.map(range(17), lambda i: i * i)
        assert out == [i * i for i in range(17)]

    def test_map_arbitrary_items(self, backend_factory):
        with backend_factory() as backend:
            out = backend.map(["a", "bb", "ccc"], len)
        assert out == [1, 2, 3]

    def test_parallel_for_side_effects(self, backend_factory):
        results = [0] * 23
        with backend_factory() as backend:

            def body(i):
                results[i] = i + 1

            backend.parallel_for(23, body)
        assert results == list(range(1, 24))

    def test_serial_for_runs_in_order(self, backend_factory):
        seen = []
        with backend_factory() as backend:
            backend.serial_for(6, seen.append)
        assert seen == list(range(6))

    def test_empty_map(self, backend_factory):
        with backend_factory() as backend:
            assert backend.map([], lambda x: x) == []


class TestValidation:
    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            SerialBackend(block_size=0)

    def test_rejects_bad_thread_count(self):
        with pytest.raises(ValueError):
            ThreadPoolBackend(0)


class TestRecordingBackend:
    def test_phases_and_tasks(self):
        backend = RecordingBackend(block_size=4)
        backend.map(range(10), lambda i: i, phase="phase-one")
        graph = backend.graph
        assert len(graph.phases) == 1
        phase = graph.phases[0]
        assert phase.name == "phase-one"
        assert phase.kind == "parallel_for"
        assert len(phase.tasks) == 3  # ceil(10 / 4)
        assert [t.items for t in phase.tasks] == [4, 4, 2]

    def test_records_kernel_costs(self):
        backend = RecordingBackend(block_size=1)
        a = np.random.default_rng(0).standard_normal((6, 3))
        backend.map(range(3), lambda i: QRFactor(a), phase="qr")
        tasks = backend.graph.phases[0].tasks
        assert all(t.flops > 0 for t in tasks)
        assert all(t.kernel_calls == 1 for t in tasks)

    def test_serial_phase_kind(self):
        backend = RecordingBackend()
        backend.serial_for(5, lambda i: None, phase="sweep")
        phase = backend.graph.phases[0]
        assert phase.kind == "serial"
        assert len(phase.tasks) == 5

    def test_reset_returns_old_graph(self):
        backend = RecordingBackend()
        backend.map(range(3), lambda i: i, phase="a")
        old = backend.reset()
        assert len(old.phases) == 1
        assert len(backend.graph.phases) == 0

    def test_block_size_override(self):
        backend = RecordingBackend(block_size=10)
        backend.map(range(10), lambda i: i, phase="x", block_size=1)
        assert len(backend.graph.phases[0].tasks) == 10


class TestThreadPoolEdgeCases:
    def test_single_thread_runs_inline(self):
        import threading

        main = threading.get_ident()
        seen = []
        with ThreadPoolBackend(1, block_size=2) as backend:
            out = backend.map(
                range(9), lambda i: (seen.append(threading.get_ident()), i)[1]
            )
        assert out == list(range(9))
        assert set(seen) == {main}

    def test_block_size_larger_than_items(self):
        with ThreadPoolBackend(4, block_size=50) as backend:
            out = backend.map(range(7), lambda i: i * 2)
        assert out == [i * 2 for i in range(7)]

    def test_block_size_override_larger_than_items(self):
        with ThreadPoolBackend(4, block_size=1) as backend:
            out = backend.map(
                range(5), lambda i: i + 1, block_size=100
            )
        assert out == list(range(1, 6))

    def test_single_thread_empty_map(self):
        with ThreadPoolBackend(1) as backend:
            assert backend.map([], lambda x: x) == []


class TestRecordingBatchedDispatch:
    """Tally correctness when the mapped bodies run batched kernels."""

    def test_batched_qr_costs_match_loop(self):
        from repro.linalg.flops import qr_flops
        from repro.linalg.householder import batched_qr

        stacks = [
            np.random.default_rng(s).standard_normal((4, 6, 3))
            for s in range(6)
        ]
        backend = RecordingBackend(block_size=2)
        backend.map(
            range(len(stacks)),
            lambda i: batched_qr(stacks[i]),
            phase="batched-qr",
        )
        phase = backend.graph.phases[0]
        assert len(phase.tasks) == 3  # ceil(6 / 2)
        # Every task ran 2 stacked factorizations of 4 slices each.
        expect = 2 * 4 * qr_flops(6, 3)
        for task in phase.tasks:
            assert task.flops == pytest.approx(expect)
            assert task.bytes_moved > 0

    def test_batch_smoother_records_replayable_graph(self):
        from repro.batch import BatchSmoother
        from repro.model.generators import random_problem
        from repro.parallel.tally import measure_flops

        problems = [
            random_problem(k=7, seed=s, dims=2, random_cov=True)
            for s in range(5)
        ]
        backend = RecordingBackend()
        _, whole_run = measure_flops(
            lambda: BatchSmoother().smooth_many(problems, backend)
        )
        graph_flops = sum(
            t.flops for ph in backend.graph.phases for t in ph.tasks
        )
        assert graph_flops > 0
        # Everything the batched kernels charged inside mapped phases
        # must appear in the recorded graph (the whole-run tally also
        # sees stacking/whitening work done outside backend.map).
        assert graph_flops <= whole_run.flops
        assert graph_flops == pytest.approx(whole_run.flops, rel=0.35)


class TestThreadPoolBackend:
    def test_actually_uses_threads(self):
        import threading

        seen = set()
        with ThreadPoolBackend(4, block_size=1) as backend:

            def body(i):
                seen.add(threading.get_ident())
                return i

            backend.map(range(64), body)
        # At least the pool's threads or the main thread participated.
        assert len(seen) >= 1

    def test_small_input_stays_inline(self):
        import threading

        main = threading.get_ident()
        seen = []
        with ThreadPoolBackend(4, block_size=100) as backend:
            backend.map(range(5), lambda i: seen.append(threading.get_ident()))
        assert set(seen) == {main}

    def test_exceptions_propagate(self):
        with ThreadPoolBackend(2, block_size=1) as backend:
            with pytest.raises(RuntimeError, match="boom"):

                def body(i):
                    if i == 33:
                        raise RuntimeError("boom")
                    return i

                backend.map(range(64), body)
