"""Property tests for the associative scans (the Associative substrate)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.parallel.backend import RecordingBackend, SerialBackend, ThreadPoolBackend
from repro.parallel.prefix import parallel_scan, scan, sequential_scan

# Non-commutative associative operations to scan with.


def affine_compose(f, g):
    """(a1, b1) then (a2, b2): x -> a2(a1 x + b1) + b2 — associative,
    non-commutative, the 1-d skeleton of the Kalman filtering op."""
    a1, b1 = f
    a2, b2 = g
    return (a2 * a1, a2 * b1 + b2)


affines = st.lists(
    st.tuples(
        st.floats(min_value=-2, max_value=2, allow_nan=False),
        st.floats(min_value=-2, max_value=2, allow_nan=False),
    ),
    min_size=1,
    max_size=40,
)


class TestSequentialScan:
    def test_prefix_sums(self):
        out = sequential_scan([1, 2, 3, 4], lambda a, b: a + b)
        assert out == [1, 3, 6, 10]

    def test_reverse_prefix(self):
        out = sequential_scan(
            [1, 2, 3, 4], lambda a, b: a + b, reverse=True
        )
        assert out == [10, 9, 7, 4]

    def test_empty(self):
        assert sequential_scan([], lambda a, b: a + b) == []

    def test_single(self):
        assert sequential_scan([7], min) == [7]

    def test_order_of_operands(self):
        """combine(left, right) must receive earlier item first."""
        out = sequential_scan(["a", "b", "c"], lambda a, b: a + b)
        assert out == ["a", "ab", "abc"]


class TestParallelScan:
    @given(affines)
    def test_matches_sequential(self, items):
        expected = sequential_scan(items, affine_compose)
        got = parallel_scan(items, affine_compose)
        for (ea, eb), (ga, gb) in zip(expected, got):
            assert ga == pytest.approx(ea, abs=1e-9)
            assert gb == pytest.approx(eb, abs=1e-9)

    @given(affines)
    def test_reverse_matches_sequential(self, items):
        expected = sequential_scan(items, affine_compose, reverse=True)
        got = parallel_scan(items, affine_compose, reverse=True)
        for (ea, eb), (ga, gb) in zip(expected, got):
            assert ga == pytest.approx(ea, abs=1e-9)
            assert gb == pytest.approx(eb, abs=1e-9)

    @pytest.mark.parametrize("k", [0, 1, 2, 3, 4, 5, 7, 8, 9, 16, 31, 33])
    def test_string_concat_all_sizes(self, k):
        items = [chr(ord("a") + i % 26) for i in range(k)]
        assert parallel_scan(items, lambda a, b: a + b) == sequential_scan(
            items, lambda a, b: a + b
        )

    def test_matrix_products(self):
        rng = np.random.default_rng(0)
        items = [rng.standard_normal((3, 3)) for _ in range(13)]
        seq = sequential_scan(items, np.matmul)
        par = parallel_scan(items, np.matmul)
        for a, b in zip(seq, par):
            assert np.allclose(a, b, atol=1e-10)

    def test_with_thread_backend(self):
        items = list(range(40))
        with ThreadPoolBackend(3, block_size=4) as backend:
            out = parallel_scan(items, lambda a, b: a + b, backend)
        assert out == sequential_scan(items, lambda a, b: a + b)

    def test_combine_count_is_at_most_2k(self):
        calls = []

        def counting(a, b):
            calls.append(1)
            return a + b

        k = 64
        parallel_scan(list(range(k)), counting)
        # Work overhead of the parallel scan: <= 2k combines vs k-1
        # sequential — the structural source of the paper's ~2x.
        assert k - 1 < len(calls) <= 2 * k

    def test_recording_backend_produces_rounds(self):
        backend = RecordingBackend(block_size=1)
        parallel_scan(list(range(32)), lambda a, b: a + b, backend)
        names = [p.name for p in backend.graph.phases]
        assert any("up" in n for n in names)
        assert any("down" in n for n in names)
        # log2(32) = 5 levels of up plus down rounds.
        assert len(names) >= 6


class TestDispatch:
    def test_scan_parallel_flag(self):
        items = list(range(10))
        assert scan(items, lambda a, b: a + b, parallel=False) == scan(
            items, lambda a, b: a + b, parallel=True
        )

    def test_scan_default_backend(self):
        assert scan([1, 2], lambda a, b: a + b) == [1, 3]
