"""Tests for task-graph work/span bookkeeping."""

import pytest

from repro.parallel.task_graph import PhaseRecord, TaskGraph, TaskRecord


def make_graph():
    g = TaskGraph()
    a = g.new_phase("a")
    a.tasks = [TaskRecord(flops=3.0), TaskRecord(flops=5.0)]
    b = g.new_phase("b", kind="serial")
    b.tasks = [TaskRecord(flops=2.0), TaskRecord(flops=2.0)]
    return g


class TestAggregates:
    def test_work(self):
        assert make_graph().work_flops == 12.0

    def test_span_parallel_phase_uses_max(self):
        g = make_graph()
        # parallel phase contributes max (5), serial contributes sum (4)
        assert g.span_flops == 9.0

    def test_parallelism(self):
        g = make_graph()
        assert g.parallelism() == pytest.approx(12.0 / 9.0)

    def test_empty_graph(self):
        g = TaskGraph()
        assert g.work_flops == 0.0
        assert g.span_flops == 0.0
        assert g.parallelism() == 1.0

    def test_n_tasks(self):
        assert make_graph().n_tasks == 4

    def test_bytes(self):
        g = TaskGraph()
        p = g.new_phase("x")
        p.tasks = [TaskRecord(bytes_moved=7.0)]
        assert g.bytes_moved == 7.0


class TestRecords:
    def test_task_merge(self):
        a = TaskRecord(flops=1.0, bytes_moved=2.0, kernel_calls=1, items=1)
        a.merge(TaskRecord(flops=9.0, bytes_moved=8.0, kernel_calls=2, items=3))
        assert a.flops == 10.0 and a.items == 4

    def test_phase_properties(self):
        p = PhaseRecord(name="x")
        p.tasks = [TaskRecord(flops=1.0, items=2), TaskRecord(flops=3.0, items=1)]
        assert p.flops == 4.0
        assert p.max_task_flops == 3.0
        assert p.items == 3

    def test_empty_phase_max(self):
        assert PhaseRecord(name="e").max_task_flops == 0.0


class TestSummary:
    def test_summary_mentions_phases(self):
        text = make_graph().summary()
        assert "a" in text and "b" in text
        assert "total work" in text
