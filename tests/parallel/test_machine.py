"""Tests for the calibrated machine models."""

import pytest

from repro.parallel.machine import (
    E5_2699V3,
    GOLD_6238R,
    GRAVITON3,
    MACHINES,
    MachineModel,
)


class TestPresets:
    def test_registry(self):
        assert set(MACHINES) == {"Graviton3", "Gold-6238R", "E5-2699v3"}

    def test_core_counts_match_paper(self):
        assert GRAVITON3.cores == 64
        assert GOLD_6238R.cores == 56 and GOLD_6238R.sockets == 2
        assert E5_2699V3.cores == 36 and E5_2699V3.sockets == 2

    @pytest.mark.parametrize("m", [GRAVITON3, GOLD_6238R, E5_2699V3])
    def test_validate(self, m):
        m.validate()


class TestRates:
    def test_intel_has_single_core_turbo(self):
        assert GOLD_6238R.rate_per_core(1) > GOLD_6238R.rate_per_core(28)

    def test_graviton_rate_nearly_flat(self):
        r1 = GRAVITON3.rate_per_core(1)
        r64 = GRAVITON3.rate_per_core(64)
        assert 0.9 < r64 / r1 <= 1.0

    def test_cross_socket_penalty(self):
        """Rate per core drops discontinuously past one socket (the
        §5.4 stagnation mechanism)."""
        assert GOLD_6238R.rate_per_core(29) < GOLD_6238R.rate_per_core(28)

    def test_rate_clamps_out_of_range(self):
        assert GRAVITON3.rate_per_core(0) == GRAVITON3.rate_per_core(1)
        assert GRAVITON3.rate_per_core(1000) == GRAVITON3.rate_per_core(64)


class TestBandwidth:
    def test_single_core_gets_full_share(self):
        assert GRAVITON3.bw_per_core(1) == pytest.approx(14.0e9)

    def test_saturation(self):
        """Per-core share shrinks once the socket saturates."""
        assert GRAVITON3.bw_per_core(64) < GRAVITON3.bw_per_core(4)
        assert GRAVITON3.bw_per_core(64) == pytest.approx(190.0e9 / 64)

    def test_numa_efficiency_applies_beyond_socket(self):
        total_28 = GOLD_6238R.bw_per_core(28) * 28
        total_56 = GOLD_6238R.bw_per_core(56) * 56
        # Two sockets with NUMA loss deliver barely more than one.
        assert total_56 < 1.2 * total_28

    def test_total_bw_monotone_within_socket(self):
        totals = [GOLD_6238R.bw_per_core(p) * p for p in (1, 4, 8, 16, 28)]
        assert all(a <= b + 1e-6 for a, b in zip(totals, totals[1:]))


class TestTaskSeconds:
    def test_compute_bound(self):
        t = GRAVITON3.task_seconds(7e9, 0.0, 0, 1)
        assert t == pytest.approx(1.0, rel=0.01)

    def test_memory_bound(self):
        t = GRAVITON3.task_seconds(0.0, 14e9, 0, 1)
        assert t == pytest.approx(1.0, rel=0.01)

    def test_roofline_max_not_sum(self):
        both = GRAVITON3.task_seconds(7e9, 14e9, 0, 1)
        assert both == pytest.approx(1.0, rel=0.01)

    def test_kernel_overhead_counts(self):
        base = GRAVITON3.task_seconds(0.0, 0.0, 0, 1)
        with_calls = GRAVITON3.task_seconds(0.0, 0.0, 100, 1)
        assert with_calls > base

    def test_barrier_grows_with_cores(self):
        assert GRAVITON3.barrier_seconds(64) > GRAVITON3.barrier_seconds(1)


class TestValidation:
    def test_bad_socket_split(self):
        m = MachineModel(
            name="bad",
            cores=10,
            cores_per_socket=3,
            gflops_per_core=1.0,
            turbo_single=1.0,
            turbo_all=1.0,
            bw_single_gbs=1.0,
            bw_socket_gbs=1.0,
            numa_efficiency=1.0,
        )
        with pytest.raises(ValueError):
            m.validate()
