"""Tests for the aligned arena allocator (scalable-allocator stand-in)."""

import numpy as np
import pytest

from repro.parallel.allocator import (
    ArenaAllocator,
    aligned_empty,
    is_aligned,
)
from repro.parallel.tally import tally_scope


class TestAlignedEmpty:
    @pytest.mark.parametrize("shape", [(3,), (4, 5), (2, 3, 4), 7])
    def test_alignment(self, shape):
        a = aligned_empty(shape)
        assert is_aligned(a, 64)
        assert a.dtype == np.float64

    def test_shape_preserved(self):
        assert aligned_empty((3, 5)).shape == (3, 5)

    def test_custom_alignment(self):
        a = aligned_empty((8,), align=256)
        assert is_aligned(a, 256)

    def test_rejects_bad_alignment(self):
        with pytest.raises(ValueError):
            aligned_empty((2,), align=10)

    def test_writable(self):
        a = aligned_empty((4, 4))
        a[:] = 1.0
        assert a.sum() == 16.0

    def test_reports_bytes_to_tally(self):
        with tally_scope() as t:
            aligned_empty((10, 10))
        assert t.bytes_moved == 800.0


class TestArenaAllocator:
    def test_allocate_shape(self):
        alloc = ArenaAllocator()
        a = alloc.allocate((6, 2))
        assert a.shape == (6, 2)
        assert is_aligned(a)

    def test_release_then_reuse(self):
        alloc = ArenaAllocator()
        a = alloc.allocate((4, 4))
        alloc.release(a)
        b = alloc.allocate((4, 4))
        assert b is a
        assert alloc.stats.reuses == 1

    def test_different_shapes_not_mixed(self):
        alloc = ArenaAllocator()
        a = alloc.allocate((2, 2))
        alloc.release(a)
        b = alloc.allocate((3, 3))
        assert b is not a
        assert alloc.stats.allocations == 2

    def test_pool_cap(self):
        alloc = ArenaAllocator(max_pool_per_shape=2)
        buffers = [alloc.allocate((2,)) for _ in range(5)]
        for b in buffers:
            alloc.release(b)
        assert alloc.stats.releases == 5
        reused = [alloc.allocate((2,)) for _ in range(5)]
        del reused
        # Only 2 could come from the pool.
        assert alloc.stats.reuses == 2

    def test_drain_publishes_stats(self):
        alloc = ArenaAllocator()
        alloc.allocate((3,))
        alloc.drain()
        assert alloc.stats.allocations == 1
        assert alloc.stats.bytes_allocated == 24

    def test_scalar_shape(self):
        a = ArenaAllocator().allocate(5)
        assert a.shape == (5,)
