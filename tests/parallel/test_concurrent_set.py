"""Tests for the lock-striped concurrent set (paper §3.2 substrate)."""

import threading

import pytest

from repro.parallel.concurrent_set import ConcurrentSet


class TestSemantics:
    def test_add_and_contains(self):
        s = ConcurrentSet()
        assert s.add("x")
        assert not s.add("x")  # already present
        assert "x" in s
        assert "y" not in s

    def test_discard(self):
        s = ConcurrentSet()
        s.add(1)
        assert s.discard(1)
        assert not s.discard(1)
        assert 1 not in s

    def test_len(self):
        s = ConcurrentSet(stripes=4)
        s.update(range(100))
        assert len(s) == 100

    def test_snapshot(self):
        s = ConcurrentSet()
        s.update("abc")
        assert s.snapshot() == {"a", "b", "c"}

    def test_clear_returns_count(self):
        s = ConcurrentSet()
        s.update(range(7))
        assert s.clear() == 7
        assert len(s) == 0

    def test_rejects_bad_stripes(self):
        with pytest.raises(ValueError):
            ConcurrentSet(stripes=0)


class TestConcurrency:
    def test_parallel_inserts(self):
        s = ConcurrentSet(stripes=8)
        n_threads, per_thread = 8, 500

        def worker(tid):
            for i in range(per_thread):
                s.add((tid, i))

        threads = [
            threading.Thread(target=worker, args=(t,))
            for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(s) == n_threads * per_thread

    def test_mixed_add_discard(self):
        s = ConcurrentSet()
        s.update(range(1000))

        def remover():
            for i in range(1000):
                s.discard(i)

        def adder():
            for i in range(1000, 2000):
                s.add(i)

        threads = [
            threading.Thread(target=remover),
            threading.Thread(target=adder),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(s) == 1000
        assert 1500 in s and 500 not in s
