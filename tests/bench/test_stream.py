"""Smoke tests for the streaming throughput benchmark harness."""

import json

from repro.bench.harness import results_dir
from repro.bench.stream import main, stream_throughput, window_accuracy


class TestStreamThroughput:
    def test_quick_sweep_record_shape(self):
        record = stream_throughput(
            stream_counts=(1, 3),
            t_steps=8,
            n=2,
            lag=3,
            repeats=1,
            result_name="_test_stream_throughput",
        )
        assert [r["streams"] for r in record["rows"]] == [1, 3]
        for row in record["rows"]:
            assert row["ultimate_loop_seconds"] > 0
            assert row["fixed_lag_loop_seconds"] > 0
            assert row["server_seconds"] > 0
            assert row["speedup_vs_ultimate_loop"] == (
                row["ultimate_loop_seconds"] / row["server_seconds"]
            )
        assert record["accuracy"]["window_error"] <= 1e-8
        assert record["accuracy"]["contract_error"] <= 1e-8
        path = results_dir() / "_test_stream_throughput.json"
        assert path.exists()
        persisted = json.loads(path.read_text())
        assert persisted["workload"]["lag"] == 3
        path.unlink()

    def test_accuracy_contract_holds(self):
        acc = window_accuracy(n_streams=3, t_steps=10, n=2, lag=3)
        assert acc["window_error"] <= 1e-8
        assert acc["contract_error"] <= 1e-8

    def test_main_quick_mode(self, capsys):
        main(["--quick"])
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "speedup" in out
        assert "accuracy" in out
        quick = results_dir() / "stream_throughput_quick.json"
        assert quick.exists()
        quick.unlink()
