"""Tests for harness utilities."""

import json

from repro.bench.harness import (
    ascii_curve,
    format_series_table,
    median_time,
    results_dir,
    save_results,
)


class TestMedianTime:
    def test_returns_median(self):
        calls = []

        def fn():
            calls.append(1)

        t = median_time(fn, repeats=5)
        assert len(calls) == 5
        assert t >= 0

    def test_positional_args_reach_fn_not_repeats(self):
        # Regression: with the old (fn, repeats, *args) signature the
        # first positional argument silently became the repeat count.
        seen = []

        def fn(x, y=None):
            seen.append((x, y))

        median_time(fn, 7, y="arg", repeats=2)
        assert seen == [(7, "arg"), (7, "arg")]

    def test_repeats_is_keyword_only(self):
        import inspect

        param = inspect.signature(median_time).parameters["repeats"]
        assert param.kind is inspect.Parameter.KEYWORD_ONLY


class TestFormatting:
    def test_series_table(self):
        table = format_series_table(
            "Title",
            "cores",
            [1, 2],
            {"algo-a": {1: 1.0, 2: 0.5}, "algo-b": {1: 2.0}},
        )
        assert "Title" in table
        assert "algo-a" in table
        assert "0.5" in table
        assert "-" in table  # missing point for algo-b at 2

    def test_ascii_curve(self):
        art = ascii_curve({1: 1.0, 2: 2.0}, label="x")
        assert "#" in art
        assert art.splitlines()[0] == "x"

    def test_ascii_curve_empty(self):
        assert "(no data)" in ascii_curve({}, label="y")


class TestPersistence:
    def test_save_results_roundtrip(self):
        import numpy as np

        path = save_results(
            "_test_artifact", {"a": np.float64(1.5), "b": np.arange(3)}
        )
        data = json.loads(path.read_text())
        assert data["a"] == 1.5
        assert data["b"] == [0, 1, 2]
        path.unlink()

    def test_results_dir_exists(self):
        assert results_dir().is_dir()
