"""Smoke tests for the sharded-serving latency benchmark harness."""

import json

from repro.bench.harness import results_dir
from repro.bench.stream_latency import main, stream_latency
from repro.obs import parse_prometheus


class TestStreamLatency:
    def test_record_schema_and_delivery(self):
        record = stream_latency(
            n_streams=24,
            t_steps=6,
            n=2,
            lag=2,
            shards=3,
            max_batch=16,
            workers=2,
            result_name="_test_stream_latency",
        )
        assert record["workload"]["streams"] == 24
        assert record["emissions"] == record["steps_total"] == 24 * 7
        assert record["steps_per_sec"] > 0
        lat = record["latency_ms"]
        assert lat["count"] > 0
        assert lat["retained"] <= lat["window"]
        assert 0 <= lat["p50"] <= lat["p99"] <= lat["max"]
        assert record["flushes"]["total"] > 0
        # The default SLO enables adaptation; its effective batch size
        # never exceeds the configured ceiling.
        assert record["adaptive"] is not None
        assert record["effective_max_batch"] <= 16
        path = results_dir() / "_test_stream_latency.json"
        assert path.exists()
        persisted = json.loads(path.read_text())
        assert persisted["config"]["shards"] == 3
        assert persisted["config"]["workers"] == 2
        path.unlink()
        prom = results_dir() / "_test_stream_latency.prom"
        assert prom.exists()
        series = parse_prometheus(prom.read_text())
        assert "repro_serving_emission_latency_seconds" in series
        assert "repro_plan_cache_hits_total" in series
        prom.unlink()

    def test_main_quick_mode(self, capsys):
        main(["--quick", "--streams", "16"])
        out = capsys.readouterr().out
        assert "steps/s" in out
        assert "p99" in out
        quick = results_dir() / "stream_latency_quick.json"
        assert quick.exists()
        persisted = json.loads(quick.read_text())
        assert persisted["steps_per_sec"] > 0
        quick.unlink()
        (results_dir() / "stream_latency_quick.prom").unlink()
