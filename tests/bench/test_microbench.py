"""Tests for the Fig 4 micro-benchmark."""

import pytest

from repro.bench.microbench import (
    PHASES,
    microbench_speedups,
    run_microbench,
)
from repro.parallel.machine import GOLD_6238R, GRAVITON3


class TestRun:
    def test_produces_graph_per_phase(self):
        result = run_microbench(n=8, k=50)
        assert set(result.graphs) == set(PHASES)
        for phase, graph in result.graphs.items():
            assert graph.n_tasks == -(-50 // 8), phase  # ceil(k/8)

    def test_qr_phase_carries_flops(self):
        result = run_microbench(n=8, k=40)
        assert result.graphs["QR Factorization"].work_flops > 0
        assert result.graphs["Allocate Matrix"].work_flops == 0.0
        assert result.graphs["Allocate Matrix"].bytes_moved > 0

    def test_allocator_stats(self):
        result = run_microbench(n=4, k=30)
        assert result.allocator_stats["allocations"] == 30


class TestSpeedups:
    @pytest.fixture(scope="class")
    def graviton(self):
        # Enough tasks (k/8 = 250) that 64-core load imbalance is
        # negligible, as at the paper's k = 100,000.
        return microbench_speedups(GRAVITON3, [1, 16, 64], n=48, k=2000)

    def test_qr_scales_best(self, graviton):
        """Fig 4: the QR phase is the best-scaling of the four."""
        qr = graviton["QR Factorization"][64]
        for phase in PHASES[:3]:
            assert graviton[phase][64] <= qr + 1e-9

    def test_qr_near_linear_on_arm(self, graviton):
        assert graviton["QR Factorization"][64] > 40

    def test_memory_phases_scale_poorly(self, graviton):
        """'the memory allocation phases scale poorly' (§5.3)."""
        for phase in ("Allocate Structure", "Allocate Matrix", "Fill Matrix"):
            assert graviton[phase][64] < 25

    def test_intel_qr_caps(self):
        gold = microbench_speedups(GOLD_6238R, [1, 28, 56], n=16, k=600)
        assert gold["QR Factorization"][56] < 30
