"""Shape tests for the figure regenerators (small problem sizes).

These assert the *qualitative* claims of each paper figure on reduced
workloads; the full-size regeneration lives in ``benchmarks/``.
"""

import numpy as np
import pytest

from repro.bench.figures import (
    fig1_structure,
    fig2_running_times,
    fig3_speedups,
    fig5_variability,
    fig6_blocksize,
    overhead_table,
    record_graph,
    stability_table,
)
from repro.bench.workloads import Workload
from repro.parallel.machine import GOLD_6238R, GRAVITON3

TINY = Workload(name="tiny", n=4, k=300, paper_n=4, paper_k=300)


@pytest.fixture(scope="module")
def tiny_times():
    return fig2_running_times(
        TINY,
        GRAVITON3,
        core_counts=[1, 8, 64],
        variants=("Odd-Even", "Odd-Even NC", "Paige-Saunders", "Kalman"),
    )


class TestFig1:
    def test_structure(self):
        data = fig1_structure(k=20)
        occ = data["occupancy"]
        assert occ.shape == (21, 21)
        assert np.array_equal(occ, np.triu(occ))
        assert data["order"][: len(data["levels"][0])] == data["levels"][0]
        assert 21 <= data["nonzero_blocks"] <= 3 * 21


class TestFig2And3:
    def test_parallel_beats_sequential_at_scale(self, tiny_times):
        """Fig 2's headline: given cores, parallel wins."""
        assert tiny_times["Odd-Even"][64] < tiny_times["Paige-Saunders"][64]

    def test_sequential_lines_flat(self, tiny_times):
        ps = tiny_times["Paige-Saunders"]
        assert ps[1] == ps[8] == ps[64]

    def test_parallel_slower_on_one_core(self, tiny_times):
        """The 1.8-2.5x single-core overhead (paper §1)."""
        assert tiny_times["Odd-Even"][1] > tiny_times["Paige-Saunders"][1]

    def test_nc_faster_than_full(self, tiny_times):
        for p in (1, 8, 64):
            assert tiny_times["Odd-Even NC"][p] < tiny_times["Odd-Even"][p]

    def test_speedups_relative_to_one_core(self, tiny_times):
        speedups = fig3_speedups(tiny_times)
        assert speedups["Odd-Even"][1] == pytest.approx(1.0)
        assert speedups["Odd-Even"][64] > 4.0


class TestFig5:
    def test_multicore_spread_wider(self):
        data = fig5_variability(
            workload=TINY, machine=GOLD_6238R, runs=30
        )
        assert (
            data[28]["max_deviation_pct"] > data[1]["max_deviation_pct"]
        )
        assert data[1]["max_deviation_pct"] < 2.0


class TestFig6:
    def test_blocksize_sweep_shape(self):
        """Small blocks fine; huge blocks starve parallelism."""
        times = fig6_blocksize(
            workload=TINY,
            cores=64,
            block_sizes=(1, 4, 150, 1200),
        )
        assert times[1200] > 2 * times[1]
        assert times[4] < times[150]


class TestOverheadTable:
    def test_ratios_in_paper_bands(self):
        # Computed on the real workload sizes is slow; monkeypatch a
        # small one through the public API instead.
        import repro.bench.figures as figures
        import repro.bench.workloads as workloads

        small = {
            "n6": Workload(name="n6", n=6, k=250, paper_n=6, paper_k=0),
        }
        orig = workloads.WORKLOADS
        figures.WORKLOADS, workloads.WORKLOADS = small, small
        try:
            table = overhead_table(workloads=("n6",))
        finally:
            figures.WORKLOADS, workloads.WORKLOADS = orig, orig
        row = table["n=6 k=250"]
        assert 1.5 < row["odd-even / paige-saunders"] < 3.0
        assert 1.5 < row["associative / kalman"] < 3.5


class TestStability:
    def test_normal_equations_degrade(self):
        table = stability_table(conds=(1e0, 1e10), n=3, k=20)
        well = table[1e0]
        ill = table[1e10]
        assert ill["normal-equations"] > 1e3 * well["normal-equations"]
        assert ill["odd-even"] < 1e-6


class TestRecordGraph:
    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError, match="unknown variant"):
            record_graph("Bogus", TINY.build())
