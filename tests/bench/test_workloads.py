"""Tests for benchmark workload definitions."""

import pytest

from repro.bench.workloads import (
    SMOKE_WORKLOADS,
    WORKLOADS,
    Workload,
    core_counts_for,
    paper_scale,
)
from repro.parallel.machine import GOLD_6238R, GRAVITON3


class TestWorkloads:
    def test_paper_sizes_recorded(self):
        assert WORKLOADS["n6"].paper_k == 5_000_000
        assert WORKLOADS["n48"].paper_k == 100_000
        assert WORKLOADS["n500"].paper_n == 500

    def test_scaled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)
        assert not paper_scale()
        wl = WORKLOADS["n6"]
        n, k = wl.effective
        assert (n, k) == (wl.n, wl.k)
        assert wl.block_size == wl.scaled_block_size

    def test_paper_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PAPER_SCALE", "1")
        assert paper_scale()
        wl = WORKLOADS["n6"]
        assert wl.effective == (6, 5_000_000)
        assert wl.block_size == 10

    def test_build_produces_problem(self):
        p = SMOKE_WORKLOADS["n48"].build()
        assert p.state_dims[0] == 48

    def test_label(self):
        assert "n=" in WORKLOADS["n6"].label()

    def test_seed_fixed(self):
        a = SMOKE_WORKLOADS["n6"].build()
        b = SMOKE_WORKLOADS["n6"].build()
        import numpy as np

        assert np.allclose(
            a.steps[0].observation.o, b.steps[0].observation.o
        )


class TestCoreCounts:
    def test_graviton(self):
        counts = core_counts_for(GRAVITON3)
        assert counts[0] == 1 and counts[-1] == 64

    def test_gold_stops_at_56(self):
        counts = core_counts_for(GOLD_6238R)
        assert counts[-1] == 56
        assert 64 not in counts
