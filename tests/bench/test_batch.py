"""Smoke tests for the batched throughput benchmark harness."""

import json

from repro.bench.batch import batch_throughput, main
from repro.bench.harness import results_dir


class TestBatchThroughput:
    def test_quick_sweep_record_shape(self):
        record = batch_throughput(
            batch_sizes=(1, 3),
            k=7,
            n=2,
            repeats=1,
            result_name="_test_batch_throughput",
        )
        assert [r["batch"] for r in record["rows"]] == [1, 3]
        for row in record["rows"]:
            assert row["loop_seconds"] > 0
            assert row["batch_seconds"] > 0
            assert row["speedup"] == (
                row["loop_seconds"] / row["batch_seconds"]
            )
        path = results_dir() / "_test_batch_throughput.json"
        assert path.exists()
        persisted = json.loads(path.read_text())
        assert persisted["workload"]["k"] == 7
        path.unlink()

    def test_main_quick_mode(self, capsys):
        main(["--quick"])
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "speedup" in out
        quick = results_dir() / "batch_throughput_quick.json"
        assert quick.exists()
        quick.unlink()
