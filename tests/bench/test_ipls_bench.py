"""Smoke tests for the batched iterated-smoother benchmark."""

import json

from repro.bench.harness import results_dir
from repro.bench.ipls import ipls_throughput, main


class TestIPLSThroughput:
    def test_quick_sweep_record_shape(self):
        record = ipls_throughput(
            fleet_sizes=(1, 3),
            scenario="pendulum",
            k=10,
            repeats=1,
            result_name="_test_ipls_throughput",
        )
        assert [r["fleet"] for r in record["rows"]] == [1, 3]
        for row in record["rows"]:
            assert row["batched_seconds"] > 0
            assert row["looped_seconds"] > 0
            assert row["iterations_max"] >= row["iterations_min"] >= 1
            assert row["speedup"] == (
                row["looped_seconds"] / row["batched_seconds"]
            )
        path = results_dir() / "_test_ipls_throughput.json"
        assert path.exists()
        persisted = json.loads(path.read_text())
        assert persisted["workload"]["scenario"] == "pendulum"
        path.unlink()

    def test_solve_counts_pin_the_batching_contract(self):
        """Sigma-point IPLS issues exactly max(iterations) stacked
        solves batched, and sum(iterations) looped."""
        record = ipls_throughput(
            fleet_sizes=(4,),
            scenario="pendulum",
            k=10,
            repeats=1,
            result_name="_test_ipls_solves",
        )
        row = record["rows"][0]
        assert row["batched_stacked_solves"] == row["iterations_max"]
        assert row["batched_stacked_solves"] < row["looped_stacked_solves"]
        (results_dir() / "_test_ipls_solves.json").unlink()

    def test_main_quick_mode(self, capsys):
        main(["--quick"])
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "speedup" in out
        assert "stacked solves" in out
        quick = results_dir() / "ipls_throughput_quick.json"
        assert quick.exists()
        quick.unlink()
