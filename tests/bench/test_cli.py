"""Smoke tests for the figure-regeneration CLI (`python -m repro.bench.figures`)."""

import pytest

from repro.bench import figures


class TestMain:
    def test_fig1(self, capsys):
        figures.main("fig1")
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "[]" in out  # the ASCII structure

    def test_stability(self, capsys):
        figures.main("stability")
        out = capsys.readouterr().out
        assert "Stability" in out
        assert "normal-eq" in out

    def test_unknown_selector_is_noop(self, capsys):
        figures.main("nonexistent-figure")
        assert capsys.readouterr().out == ""


class TestResultsArtifacts:
    def test_fig1_saved(self, capsys):
        figures.main("fig1")
        capsys.readouterr()
        from repro.bench.harness import results_dir

        assert (results_dir() / "fig1.json").exists()
