"""Figure 6 (left): Odd-Even time on all cores vs TBB block size.

Paper shape (n=6, k=5,000,000, 64 cores): performance is roughly flat
from block size 1 up to ~1,000 and degrades badly from ~5,000 upward as
parallelism starves.  At a laptop-scaled k the knee appears at
proportionally smaller block sizes (the controlling quantity is
tasks-per-core = k / (block * p)); the flat-then-rising shape is the
reproduction target.
"""

import pytest

from repro.bench.figures import record_graph
from repro.bench.harness import format_series_table, save_results
from repro.parallel.machine import GRAVITON3
from repro.parallel.scheduler import greedy_schedule


@pytest.mark.benchmark(group="fig6")
def test_fig6_blocksize(benchmark, bench_workloads):
    workload = bench_workloads["n6"]
    problem = workload.build()
    _n, k = workload.effective
    block_sizes = [b for b in (1, 4, 16, 64, 256, 1024, 4 * k) if b <= 4 * k]

    times = {}
    for bs in block_sizes:
        graph = record_graph("Odd-Even", problem, block_size=bs)
        times[bs] = greedy_schedule(graph, GRAVITON3, 64).seconds

    print(
        "\n"
        + format_series_table(
            f"Figure 6 left — Odd-Even on 64 Graviton3 cores, "
            f"{workload.label()}, vs block size",
            "block",
            block_sizes,
            {"Odd-Even": times},
        )
    )
    save_results("fig6_left", {str(b): t for b, t in times.items()})

    # Shape: small block sizes within ~2x of each other (flat region);
    # a block size that swallows the whole array starves the machine.
    assert times[4] < 2.0 * times[1]
    assert times[4 * k] > 4.0 * times[1]
    # Monotone degradation from the knee onward.
    tail = [times[b] for b in block_sizes if b >= 64]
    assert all(a <= b + 1e-9 for a, b in zip(tail, tail[1:]))

    benchmark(record_graph, "Odd-Even", problem, 16)
