"""Shared configuration for the figure-regeneration benchmarks.

Each benchmark module regenerates one paper artifact (figure or table),
prints the paper-style series, persists JSON under ``results/``, and
times a representative unit of the pipeline with pytest-benchmark.

Sizes here are laptop-scaled (see DESIGN.md §2 and
``repro.bench.workloads``); set ``REPRO_PAPER_SCALE=1`` for the paper's
exact sizes (hours of runtime).
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import Workload

#: Medium sizes: large enough that simulated-scaling shapes are stable,
#: small enough that the whole benchmark suite runs in a few minutes.
BENCH_WORKLOADS = {
    "n6": Workload(
        name="n6", n=6, k=4000, paper_n=6, paper_k=5_000_000
    ),
    "n48": Workload(
        name="n48", n=48, k=400, paper_n=48, paper_k=100_000
    ),
    "n500": Workload(
        name="n500", n=64, k=300, paper_n=500, paper_k=500,
        paper_block_size=1,
    ),
}


@pytest.fixture(scope="session")
def bench_workloads():
    return BENCH_WORKLOADS


@pytest.fixture(scope="session")
def graph_cache():
    """Recorded task graphs shared across benchmarks in one session.

    Recording runs the full algorithm numerically; caching one graph
    per (variant, workload) keeps the suite fast while every figure
    still simulates from real recorded costs.
    """
    from repro.bench.figures import record_graph

    cache: dict = {}

    def get(variant: str, workload: Workload):
        key = (variant, *workload.effective, workload.block_size)
        if key not in cache:
            cache[key] = record_graph(
                variant, workload.build(), workload.block_size
            )
        return cache[key]

    return get
