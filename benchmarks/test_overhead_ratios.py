"""The §1/§5.4 work-overhead table, in counted flops AND real seconds.

Paper numbers: the parallel Odd-Even algorithm performs 1.8-2.5x the
arithmetic of sequential Paige–Saunders (1.8-2.0x for the NC variants);
the Associative algorithm performs 1.8-2.7x the arithmetic of the
conventional Kalman (RTS) smoother.  Flop counts are exact here (every
kernel is instrumented); the wall-clock benchmarks measure the same
algorithms on this host's single core, where the paper predicts the
sequential algorithms win (§6: "the sequential variants are faster on
small numbers of cores").
"""

import pytest

from repro.bench.harness import save_results
from repro.core.smoother import OddEvenSmoother
from repro.kalman.associative import AssociativeSmoother
from repro.kalman.paige_saunders import PaigeSaundersSmoother
from repro.kalman.rts import RTSSmoother
from repro.parallel.tally import measure_flops

SMOOTHERS = {
    "Odd-Even": lambda p: OddEvenSmoother().smooth(p),
    "Odd-Even NC": lambda p: OddEvenSmoother(
        compute_covariance=False
    ).smooth(p),
    "Associative": lambda p: AssociativeSmoother().smooth(p),
    "Paige-Saunders": lambda p: PaigeSaundersSmoother().smooth(p),
    "Paige-Saunders NC": lambda p: PaigeSaundersSmoother(
        compute_covariance=False
    ).smooth(p),
    "Kalman": lambda p: RTSSmoother().smooth(p),
}


@pytest.fixture(scope="module")
def flop_table(bench_workloads):
    table = {}
    for name in ("n6", "n48"):
        problem = bench_workloads[name].build()
        flops = {
            label: measure_flops(fn, problem)[1].flops
            for label, fn in SMOOTHERS.items()
        }
        table[name] = flops
    return table


@pytest.mark.benchmark(group="overhead")
def test_overhead_ratios(benchmark, flop_table, bench_workloads):
    # Time the instrumented flop measurement itself on the smaller
    # workload (keeps this target runnable under --benchmark-only).
    problem = bench_workloads["n48"].build()
    benchmark.pedantic(
        measure_flops,
        args=(SMOOTHERS["Kalman"], problem),
        rounds=1,
        iterations=1,
    )
    rows = {}
    for name, flops in flop_table.items():
        label = bench_workloads[name].label()
        rows[label] = {
            "odd-even / paige-saunders": flops["Odd-Even"]
            / flops["Paige-Saunders"],
            "odd-even-nc / paige-saunders-nc": flops["Odd-Even NC"]
            / flops["Paige-Saunders NC"],
            "associative / kalman": flops["Associative"] / flops["Kalman"],
        }
    print("\nWork-overhead ratios (counted flops):")
    for label, ratios in rows.items():
        for key, value in ratios.items():
            print(f"  {label:16s} {key:34s} {value:.2f}x")
    save_results("overhead_ratios", rows)

    for ratios in rows.values():
        # Paper bands, with modest slack for the scaled workloads.
        assert 1.5 < ratios["odd-even / paige-saunders"] < 3.0
        assert 1.5 < ratios["odd-even-nc / paige-saunders-nc"] < 3.0
        assert 1.5 < ratios["associative / kalman"] < 3.5
        # NC overhead is no worse than the full variant's.
        assert (
            ratios["odd-even-nc / paige-saunders-nc"]
            <= ratios["odd-even / paige-saunders"] + 0.25
        )


@pytest.mark.benchmark(group="overhead-wallclock")
@pytest.mark.parametrize("label", list(SMOOTHERS))
def test_single_core_wall_clock(benchmark, label, bench_workloads):
    """Real seconds for each smoother on this host (n=6 workload)."""
    problem = bench_workloads["n6"].build()
    fn = SMOOTHERS[label]
    result = benchmark.pedantic(fn, args=(problem,), rounds=3, iterations=1)
    assert len(result.means) == problem.n_states
