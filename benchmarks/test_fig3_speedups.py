"""Figure 3: speedups of the parallel smoothers.

Ratios are relative to the same implementation on one core, exactly as
the paper plots them.  Anchors from the paper: Odd-Even reaches ~40x
(n=6) and ~47x (n=48) on the 64-core Graviton3; the Xeon caps near
15-20x and stagnates beyond one socket; Odd-Even scales at least as
well as Associative.
"""

import pytest

from repro.bench.figures import PARALLEL_VARIANTS, fig3_speedups
from repro.bench.harness import format_series_table, save_results
from repro.bench.workloads import core_counts_for
from repro.parallel.machine import GOLD_6238R, GRAVITON3
from repro.parallel.scheduler import greedy_schedule

MACHINES = {"Graviton3": GRAVITON3, "Gold-6238R": GOLD_6238R}


@pytest.mark.benchmark(group="fig3")
@pytest.mark.parametrize("machine_name", list(MACHINES))
@pytest.mark.parametrize("workload_name", ["n6", "n48"])
def test_fig3_panel(
    benchmark, machine_name, workload_name, bench_workloads, graph_cache
):
    machine = MACHINES[machine_name]
    workload = bench_workloads[workload_name]
    cores = core_counts_for(machine)
    times = {}
    for variant in PARALLEL_VARIANTS:
        graph = graph_cache(variant, workload)
        times[variant] = {
            p: greedy_schedule(graph, machine, p).seconds for p in cores
        }
    speedups = benchmark(fig3_speedups, times)

    print(
        "\n"
        + format_series_table(
            f"Figure 3 — {machine_name}, {workload.label()} (speedup "
            "vs same implementation on 1 core)",
            "cores",
            cores,
            speedups,
            unit="x",
            fmt="{:.2f}",
        )
    )
    save_results(f"fig3_{machine_name}_{workload_name}", speedups)

    oe = speedups["Odd-Even"]
    if machine_name == "Graviton3":
        # ARM: monotone, substantial scaling (paper: up to 47x).
        values = [oe[p] for p in cores]
        assert all(b >= a - 0.5 for a, b in zip(values, values[1:]))
        assert oe[64] > 25
    else:
        # Xeon: caps well below the ARM box.
        assert oe[56] < 30
