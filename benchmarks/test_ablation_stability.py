"""§6 stability ablation: orthogonal transformations vs normal equations.

The paper's conclusions call the normal-equations odd-even reduction
"unstable" and the QR smoothers "conditionally backward stable" (the
condition being the input covariances).  This target sweeps the
covariance condition number on problems whose exact least-squares
solution is known via a dense orthogonal solve, and reports each
algorithm's error: the QR methods degrade linearly in the condition of
the *whitened* matrix (~sqrt of the covariance condition), the normal
equations quadratically.
"""

import numpy as np
import pytest

from repro.bench.figures import stability_table
from repro.bench.harness import format_series_table, save_results
from repro.core.normal_equations import NormalEquationsSmoother
from repro.model.generators import ill_conditioned_problem

CONDS = (1e0, 1e3, 1e6, 1e9, 1e12)


@pytest.mark.benchmark(group="stability")
def test_stability_sweep(benchmark):
    table = stability_table(conds=CONDS, n=4, k=60)
    series = {
        algo: {cond: table[cond][algo] for cond in CONDS}
        for algo in ("odd-even", "paige-saunders", "normal-equations")
    }
    print(
        "\n"
        + format_series_table(
            "Stability ablation — max abs error vs dense orthogonal solve",
            "cond(K,L)",
            list(CONDS),
            series,
            unit="abs err",
            fmt="{:.2e}",
        )
    )
    save_results(
        "stability", {f"{c:.0e}": table[c] for c in CONDS}
    )

    # QR methods stay accurate across the sweep...
    for cond in CONDS:
        assert table[cond]["odd-even"] < 1e-6
        assert table[cond]["paige-saunders"] < 1e-6
    # ...the normal equations lose accuracy superlinearly.
    assert (
        table[1e12]["normal-equations"]
        > 1e4 * table[1e0]["normal-equations"]
    )
    assert (
        table[1e12]["normal-equations"]
        > 1e3 * table[1e12]["odd-even"]
    )

    problem = ill_conditioned_problem(n=4, k=60, cond=1e9, seed=1)
    benchmark(NormalEquationsSmoother().smooth, problem)
