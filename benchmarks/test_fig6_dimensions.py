"""Figure 6 (right): Odd-Even speedups across problem dimensions.

Paper shape (Graviton3): the n=48 workload scales somewhat better than
n=6 (better computation-to-communication ratio); the n=500, k=500 run
scales worst — not enough steps to feed 64 cores ("insufficient
parallelism").  The n=500 configuration is dimension-reduced by default
(DESIGN.md §2): the starvation effect is controlled by k and the task
counts per level, both preserved.
"""

import pytest

from repro.bench.harness import format_series_table, save_results
from repro.bench.workloads import Workload, core_counts_for
from repro.parallel.machine import GRAVITON3
from repro.parallel.scheduler import greedy_schedule

#: Dedicated sizes: the starvation contrast needs the n=6/n=48 runs to
#: have many more steps than the k=500-class run (as in the paper,
#: where they have 200-10,000x more).
DIM_WORKLOADS = (
    Workload(name="n6", n=6, k=8000, paper_n=6, paper_k=5_000_000),
    Workload(name="n48", n=48, k=800, paper_n=48, paper_k=100_000),
    Workload(
        name="n500", n=64, k=300, paper_n=500, paper_k=500,
        paper_block_size=1,
    ),
)


@pytest.mark.benchmark(group="fig6")
def test_fig6_dimensions(benchmark, graph_cache):
    cores = core_counts_for(GRAVITON3)
    speedups = {}
    for workload in DIM_WORKLOADS:
        graph = graph_cache("Odd-Even", workload)
        times = {
            p: greedy_schedule(graph, GRAVITON3, p).seconds
            for p in cores
        }
        speedups[workload.label()] = {p: times[1] / times[p] for p in cores}

    print(
        "\n"
        + format_series_table(
            "Figure 6 right — Odd-Even speedups by dimension (Graviton3)",
            "cores",
            cores,
            speedups,
            unit="x",
            fmt="{:.2f}",
        )
    )
    save_results("fig6_right", speedups)

    labels = list(speedups)
    n6, n48, n500 = (speedups[label][64] for label in labels)
    # n=48 scales best; the k=500 run is parallelism-starved.
    assert n48 > n6 * 0.95
    assert n500 < n48
    assert n500 < 0.75 * max(n6, n48)

    graph = graph_cache("Odd-Even", DIM_WORKLOADS[-1])
    benchmark(greedy_schedule, graph, GRAVITON3, 64)
