"""Figure 5: run-time distributions under randomized work stealing.

The paper runs the Odd-Even smoother 100 times on the Xeon and
histograms the times: the spread is ~13% of the median at 28 cores but
only ~1.5% on one core (and ±2.4% at 64 cores on the Graviton3) — the
randomized scheduler's footprint.  We replay the recorded graph through
the seeded work-stealing scheduler 100 times per configuration.
"""

import numpy as np
import pytest

from repro.bench.harness import ascii_curve, save_results
from repro.parallel.machine import GOLD_6238R, GRAVITON3
from repro.parallel.scheduler import work_stealing_schedule


def distribution(graph, machine, cores, runs=100, seed=0):
    rng = np.random.default_rng(seed)
    times = np.array(
        [
            work_stealing_schedule(
                graph, machine, cores, seed=rng.integers(2**31)
            ).seconds
            for _ in range(runs)
        ]
    )
    med = float(np.median(times))
    return times, med, float(100 * np.max(np.abs(times - med)) / med)


def histogram(times, med, bins=13):
    """ASCII histogram over a ±10%-of-median span (paper's 20% span)."""
    lo, hi = 0.9 * med, 1.1 * med
    counts, edges = np.histogram(times, bins=bins, range=(lo, hi))
    return ascii_curve(
        {f"{100 * (e / med - 1):+.1f}%": int(c) for e, c in zip(edges, counts)},
        label="deviation from median -> runs",
    )


@pytest.mark.benchmark(group="fig5")
def test_fig5_variability(benchmark, bench_workloads, graph_cache):
    workload = bench_workloads["n6"]
    graph = graph_cache("Odd-Even", workload)

    results = {}
    for machine, cores_points in (
        (GOLD_6238R, (1, 28)),
        (GRAVITON3, (1, 64)),
    ):
        for p in cores_points:
            times, med, dev = distribution(graph, machine, p)
            results[f"{machine.name}/p{p}"] = {
                "median_s": med,
                "max_deviation_pct": dev,
            }
            print(
                f"\nFigure 5 — {machine.name}, {p} cores: median "
                f"{med * 1e3:.3f} ms, max deviation ±{dev:.2f}%"
            )
            print(histogram(times, med))
    save_results("fig5", results)

    # Paper's qualitative claims: multicore spread far exceeds the
    # single-core spread; 1-core spread is ~1%.
    assert (
        results["Gold-6238R/p28"]["max_deviation_pct"]
        > 3 * results["Gold-6238R/p1"]["max_deviation_pct"]
    )
    assert results["Gold-6238R/p1"]["max_deviation_pct"] < 2.0
    assert results["Graviton3/p64"]["max_deviation_pct"] < 8.0

    benchmark(
        work_stealing_schedule, graph, GOLD_6238R, 28, 1234
    )
