"""Figure 1: the nonzero block structure of the odd-even ``R`` factor.

The paper shows the factor for ``k = 50`` states: a block diagonal in
elimination order with at most two off-diagonal blocks per block row,
O(k) nonzero blocks in total.  This target regenerates the occupancy
picture, saves it under ``results/fig1.json``, and benchmarks the
factorization that produces it.
"""

import numpy as np
import pytest

from repro.bench.figures import fig1_structure
from repro.bench.harness import save_results
from repro.core.oddeven_qr import oddeven_factorize
from repro.model.generators import random_orthonormal_problem


@pytest.mark.benchmark(group="fig1")
def test_fig1_structure(benchmark):
    data = benchmark(fig1_structure, 50)
    occ = data["occupancy"]
    # The paper's picture: upper triangular in elimination order,
    # <= 3 blocks per row, O(k) fill.
    assert occ.shape == (51, 51)
    assert np.array_equal(occ, np.triu(occ))
    assert occ.sum(axis=1).max() <= 3
    assert data["nonzero_blocks"] <= 3 * 51
    save_results(
        "fig1",
        {
            "k": data["k"],
            "order": data["order"],
            "nonzero_blocks": data["nonzero_blocks"],
            "ascii": data["ascii"],
        },
    )
    print("\nFigure 1 — odd-even R structure, k=50 "
          f"({data['nonzero_blocks']} nonzero blocks):")
    print(data["ascii"])


@pytest.mark.benchmark(group="fig1")
def test_fig1_factorization_cost(benchmark):
    """Time the k=50 factorization itself (the object Fig 1 depicts)."""
    problem = random_orthonormal_problem(n=6, k=50, seed=0)
    factor = benchmark(oddeven_factorize, problem)
    assert factor.k == 50
