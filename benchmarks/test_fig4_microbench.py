"""Figure 4: the embarrassingly-parallel micro-benchmark.

Four phases over the step array — allocate structures, allocate
2n x n matrices, fill them, QR-factor them — characterizing what each
server can deliver per phase.  Paper anchors: QR speedup ~59x on the
64-core Graviton3 (nearly linear) vs ~18x cap on the Xeon; the
allocation and fill phases are memory-bound and scale poorly on both.
"""

import pytest

from repro.bench.harness import format_series_table, save_results
from repro.bench.microbench import PHASES, microbench_speedups, run_microbench
from repro.bench.workloads import core_counts_for
from repro.parallel.machine import GOLD_6238R, GRAVITON3

MACHINES = {"Graviton3": GRAVITON3, "Gold-6238R": GOLD_6238R}


@pytest.mark.benchmark(group="fig4")
@pytest.mark.parametrize("machine_name", list(MACHINES))
def test_fig4_microbench(benchmark, machine_name):
    machine = MACHINES[machine_name]
    cores = core_counts_for(machine)
    speedups = microbench_speedups(machine, cores, n=48, k=2000)

    print(
        "\n"
        + format_series_table(
            f"Figure 4 — micro-benchmark phase speedups, {machine_name} "
            "(n=48)",
            "cores",
            cores,
            speedups,
            unit="x",
            fmt="{:.1f}",
        )
    )
    save_results(f"fig4_{machine_name}", speedups)

    qr = speedups["QR Factorization"]
    pmax = machine.cores
    if machine_name == "Graviton3":
        assert qr[pmax] > 45  # paper: 59x on 64 cores
    else:
        assert qr[pmax] < 30  # paper: ~18x, single-CPU achievable
    # Memory phases scale worse than QR on both servers.
    for phase in PHASES[:3]:
        assert speedups[phase][pmax] < qr[pmax]

    # Benchmark the real four-phase execution (wall clock).
    benchmark(run_microbench, 48, 500)
