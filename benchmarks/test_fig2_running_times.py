"""Figure 2: running times of all six smoother variants vs cores.

Four panels: {Graviton3, Gold-6238R} x {n=6, n=48}.  Sequential
variants (Paige–Saunders, Paige–Saunders NC, Kalman/RTS) are flat
lines; the parallel variants (Odd-Even, Odd-Even NC, Associative)
descend with core count.  Times are simulated seconds on the recorded
task graphs (DESIGN.md §2); shapes — who wins, single-core overhead,
Intel stagnation — are the reproduction targets, not absolute seconds.
"""

import pytest

from repro.bench.figures import (
    PARALLEL_VARIANTS,
    SEQUENTIAL_VARIANTS,
    fig3_speedups,
)
from repro.bench.harness import format_series_table, save_results
from repro.bench.workloads import core_counts_for
from repro.parallel.machine import GOLD_6238R, GRAVITON3
from repro.parallel.scheduler import greedy_schedule

MACHINES = {"Graviton3": GRAVITON3, "Gold-6238R": GOLD_6238R}


def panel(machine, workload, graph_cache):
    cores = core_counts_for(machine)
    series = {}
    for variant in PARALLEL_VARIANTS + SEQUENTIAL_VARIANTS:
        graph = graph_cache(variant, workload)
        if variant in SEQUENTIAL_VARIANTS:
            t1 = greedy_schedule(graph, machine, 1).seconds
            series[variant] = {p: t1 for p in cores}
        else:
            series[variant] = {
                p: greedy_schedule(graph, machine, p).seconds
                for p in cores
            }
    return cores, series


@pytest.mark.benchmark(group="fig2")
@pytest.mark.parametrize("machine_name", list(MACHINES))
@pytest.mark.parametrize("workload_name", ["n6", "n48"])
def test_fig2_panel(
    benchmark, machine_name, workload_name, bench_workloads, graph_cache
):
    machine = MACHINES[machine_name]
    workload = bench_workloads[workload_name]
    cores, series = panel(machine, workload, graph_cache)

    # Benchmark one representative scheduling pass (the simulation is
    # the per-panel unit of work once graphs are recorded).
    graph = graph_cache("Odd-Even", workload)
    benchmark(greedy_schedule, graph, machine, machine.cores)

    print(
        "\n"
        + format_series_table(
            f"Figure 2 — {machine_name}, {workload.label()} "
            "(simulated seconds)",
            "cores",
            cores,
            series,
        )
    )
    save_results(f"fig2_{machine_name}_{workload_name}", series)

    # Shape assertions the paper states in §5.4:
    # (1) parallel variants carry a 1.8-2.7x single-core overhead;
    assert series["Odd-Even"][1] > 1.3 * series["Paige-Saunders"][1]
    assert series["Associative"][1] > 1.3 * series["Kalman"][1]
    # (2) with all cores, every parallel variant beats every sequential;
    pmax = machine.cores
    fastest_seq = min(series[v][pmax] for v in SEQUENTIAL_VARIANTS)
    for v in PARALLEL_VARIANTS:
        assert series[v][pmax] < fastest_seq
    # (3) Odd-Even is faster than Associative ("almost always", §1) —
    # here at every core count;
    for p in cores:
        assert series["Odd-Even"][p] < series["Associative"][p]
    # (4) NC variants are cheaper than their full versions.
    assert series["Odd-Even NC"][pmax] < series["Odd-Even"][pmax]

    speedups = fig3_speedups(series)
    if machine_name == "Gold-6238R":
        # (5) Intel scaling "mostly stagnates" past one socket.
        for v in PARALLEL_VARIANTS:
            assert speedups[v][56] < 1.35 * speedups[v][28]
